"""Contraction planning and sharded reconstruction kernels.

The reconstruction contraction (Eq. 3 / Eq. 4) sums, over every wire-cut basis
assignment (and every gate-cut instance combination), a product of per-subcircuit
effective values.  The naive path walks those loops in Python, one scalar term at
a time.  This module turns the same sum into *planned* dense tensor work:

* :func:`plan_contraction` inspects the cut structure (how many of the ``k`` wire
  cuts and ``m`` gate cuts touch each subcircuit, and each subcircuit's output
  width) and emits a :class:`ContractionPlan` — a cost model plus an execution
  schedule (shard axis, shard count, kron chunk rows),
* the index-map builders (:func:`assignment_index_maps`,
  :func:`instance_index_maps`, :func:`flat_index_maps`,
  :func:`output_index_blocks`) precompute, once per plan, the gather/scatter
  indices the kernels need, and
* the kernels (:func:`contract_probability_shard`,
  :func:`contract_expectation_terms`) evaluate the contraction with vectorized
  NumPy products in a **documented fixed reduction order** (below), so the
  planned path is bit-identical to the naive scalar walk.

Fixed reduction order (the bitwise contract)
--------------------------------------------

Floating-point addition is not associative, so "same sum, different order" is
not bit-identical.  The planned path therefore *never reassociates* the naive
reduction; it only vectorizes it:

1. **Products associate left, in subcircuit order.**  The per-assignment
   Kronecker product is built pairwise left-to-right over the subcircuits
   (``((v0 x v1) x v2) ...``), exactly like the naive ``np.kron`` /
   ``float * float`` chain.  Batched kron uses broadcasting
   (``(K[:, :, None] * R[:, None, :]).reshape(rows, -1)``), which performs the
   identical per-element multiplications.
2. **Sums accumulate serially, in assignment order.**  Cross-assignment (and
   cross-instance) accumulation is an explicit sequential loop — one
   element-wise ``accumulator += row`` per assignment (probability), one scalar
   ``value += contribution`` per combination (expectation) — never a pairwise
   ``np.sum``/``einsum`` tree reduction.
3. **Zero-coefficient terms may be added, never skipped differently.**  The
   naive walk skips combinations whose coefficient is exactly ``0.0``; the
   vectorized kernels include them as ``±0.0`` contributions.  Adding ``±0.0``
   to a running sum that started at ``+0.0`` never changes its bits under IEEE
   round-to-nearest, so both paths agree bit for bit.
4. **Shards split outputs, not sums.**  Each reconstructed output element's
   assignment-sum is independent of every other element's, so sharding
   partitions *output columns* (probability) or *observable terms*
   (expectation) across workers; within a shard the order above is unchanged,
   and the merge writes disjoint slices (probability) or sums term
   contributions in term order (expectation) — no floating-point mixing across
   shards.

Cost model
----------

Per subcircuit ``S`` touched by ``c_S`` wire cuts and ``g_S`` gate cuts with
``2**w_S`` output elements, the planned path materialises a dense table of
``4**c_S * 6**g_S`` rows (each row one effective value/vector) — exponential
only in the *local* cut count, not the global one.  The fused contraction then
costs about ``4**k * prod_S 2**w_S`` multiply-adds (probability) or
``4**k * 6**m * num_subcircuits`` (expectation), versus the naive walk's
additional large per-term Python interpreter constant.  The planner uses these
estimates to decide whether sharding is worth the process-pool transport at all
(:data:`MIN_SHARD_FLOPS`) and how many kron rows to batch per chunk
(:data:`CHUNK_ELEMENT_BUDGET`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..utils.timing import perf_clock

__all__ = [
    "CHUNK_ELEMENT_BUDGET",
    "MIN_SHARD_FLOPS",
    "ContractionCost",
    "ContractionPlan",
    "ContractionReport",
    "ShardUtilization",
    "SpecAxis",
    "assignment_index_maps",
    "balanced_blocks",
    "contract_expectation_terms",
    "contract_probability_shard",
    "flat_index_maps",
    "instance_index_maps",
    "output_index_blocks",
    "plan_contraction",
]

#: Estimated interpreter cost (in flop-equivalents) of one per-subcircuit visit
#: in the naive Python walk: dict building, memo lookups, float boxing.
PYTHON_VISIT_FLOPS = 48.0

#: Below this estimated fused-contraction cost, sharding is not worth the
#: process-pool transport and the planner keeps a single shard.
MIN_SHARD_FLOPS = float(1 << 18)

#: Target elements per kron chunk: bounds the planned path's peak temporary
#: memory (``chunk_rows * shard_width`` floats) independent of ``4**k``.
CHUNK_ELEMENT_BUDGET = 1 << 16


@dataclass(frozen=True)
class SpecAxis:
    """One subcircuit's role in the contraction, as the planner sees it.

    ``wire_positions`` / ``gate_positions`` are the indices (ascending) of the
    wire cuts / gate cuts touching this subcircuit within the solution's global
    cut lists; ``output_width`` is ``2**len(output_qubits)``.
    """

    spec_index: int
    wire_positions: Tuple[int, ...]
    gate_positions: Tuple[int, ...]
    output_width: int

    @property
    def local_assignments(self) -> int:
        """Distinct restricted wire-cut assignments this subcircuit sees."""
        return 4 ** len(self.wire_positions)

    @property
    def local_instances(self) -> int:
        """Distinct restricted gate-cut instance combinations this subcircuit sees."""
        return 6 ** len(self.gate_positions)

    @property
    def table_rows(self) -> int:
        """Rows of this subcircuit's dense effective-value table."""
        return self.local_assignments * self.local_instances


@dataclass(frozen=True)
class ContractionCost:
    """The planner's flop estimates for one contraction (see the module docstring)."""

    assignments: int
    instance_combos: int
    output_elements: int
    table_rows: int
    naive_flops: float
    fused_flops: float
    per_shard_flops: float

    @property
    def predicted_speedup(self) -> float:
        """Modelled naive/planned cost ratio (a planning heuristic, not a promise)."""
        return self.naive_flops / max(1.0, self.per_shard_flops)


@dataclass(frozen=True)
class ContractionPlan:
    """A planned contraction schedule: what to materialise, how to shard it.

    ``axes`` lists the subcircuits in canonical (reduction) order — the plan
    never reorders the contraction, it only schedules its execution.  For
    probability mode ``shard_axis`` names the subcircuit whose output columns
    are partitioned into ``shard_blocks`` (``(lo, hi)`` half-open column
    ranges); for expectation mode shards partition observable terms instead and
    ``shard_axis`` is ``-1`` with empty ``shard_blocks``.
    """

    kind: str
    num_wire_cuts: int
    num_gate_cuts: int
    axes: Tuple[SpecAxis, ...]
    shard_axis: int
    num_shards: int
    shard_blocks: Tuple[Tuple[int, int], ...]
    chunk_rows: int
    cost: ContractionCost


@dataclass(frozen=True)
class ShardUtilization:
    """Work done by one contraction shard: output elements (or terms) and busy time."""

    shard: int
    elements: int
    seconds: float

    def row(self) -> Dict[str, object]:
        """Flat dictionary for benchmark tables."""
        return {
            "shard": self.shard,
            "elements": self.elements,
            "seconds": round(self.seconds, 6),
        }


@dataclass(frozen=True)
class ContractionReport:
    """How one reconstruction's contraction actually ran (mode, stages, shards).

    ``plan_seconds`` / ``contract_seconds`` / ``merge_seconds`` split the
    contraction wall clock into planning + index precomputation, sharded kernel
    execution (including the per-subcircuit table fill), and the deterministic
    merge.  ``shards`` carries per-shard utilization; ``serial_fallback`` is set
    when a broken worker pool forced completed shards to be salvaged and the
    rest to rerun serially (results are identical either way).
    """

    mode: str
    kind: str
    workers: int
    num_shards: int
    plan_seconds: float
    contract_seconds: float
    merge_seconds: float
    serial_fallback: bool = False
    shards: Tuple[ShardUtilization, ...] = ()
    plan: Optional[ContractionPlan] = field(default=None, repr=False)

    @property
    def seconds(self) -> float:
        """Total contraction wall clock (plan + contract + merge)."""
        return self.plan_seconds + self.contract_seconds + self.merge_seconds

    @property
    def shard_utilization(self) -> float:
        """Mean busy fraction of the shard slots over the contract stage.

        ``1.0`` means every shard slot was busy for the whole contract stage;
        lower values expose imbalance or pool overhead.  Reported alongside
        ``device_utilization`` on evaluation results.
        """
        if not self.shards or self.contract_seconds <= 0.0:
            return 1.0
        busy = sum(shard.seconds for shard in self.shards)
        return min(1.0, busy / (max(1, self.num_shards) * self.contract_seconds))

    def row(self) -> Dict[str, object]:
        """Flat dictionary for benchmark tables."""
        return {
            "contraction": self.mode,
            "kind": self.kind,
            "workers": self.workers,
            "shards": self.num_shards,
            "plan_seconds": round(self.plan_seconds, 6),
            "contract_seconds": round(self.contract_seconds, 6),
            "merge_seconds": round(self.merge_seconds, 6),
            "shard_utilization": round(self.shard_utilization, 4),
            "serial_fallback": self.serial_fallback,
        }


def balanced_blocks(total: int, parts: int) -> Tuple[Tuple[int, int], ...]:
    """Split ``range(total)`` into ``parts`` contiguous half-open blocks.

    Blocks differ in size by at most one (larger blocks first) and empty blocks
    are never produced — fewer blocks are returned when ``parts > total``.
    """
    parts = max(1, min(parts, total))
    base, remainder = divmod(total, parts)
    blocks: List[Tuple[int, int]] = []
    start = 0
    for index in range(parts):
        size = base + (1 if index < remainder else 0)
        blocks.append((start, start + size))
        start += size
    return tuple(blocks)


def plan_contraction(
    solution: Any,
    specs: Sequence,
    workers: int = 1,
    kind: str = "probability",
    num_terms: int = 1,
    output_widths: Optional[Sequence[int]] = None,
) -> ContractionPlan:
    """Build a :class:`ContractionPlan` for ``solution``'s cut structure.

    Args:
        solution: the :class:`~repro.cutting.cuts.CutSolution` being
            reconstructed (its ``wire_cuts`` / ``gate_cuts`` order defines the
            global assignment enumeration the kernels must reproduce).
        specs: the subcircuit specs in canonical contraction order.
        workers: contraction worker budget (shards never exceed it).
        kind: ``"probability"`` or ``"expectation"``.
        num_terms: observable term count (expectation mode only; bounds the
            term-level shard count).
        output_widths: per-subcircuit output widths overriding the default
            ``2**len(spec.output_qubits)`` — the dynamic-definition path plans
            over *binned* widths (``2**active_bits`` per subcircuit) so the
            schedule, shard blocks and chunk sizes are sized for the reduced
            stacks.  When every width equals the default, the plan is
            identical to the unbinned one.

    Returns:
        The plan: per-subcircuit axes, the cost model, the shard schedule and
        the kron chunk size.
    """
    if kind not in ("probability", "expectation"):
        raise ValueError(f"kind must be 'probability' or 'expectation', got {kind!r}")
    if not specs:
        raise ValueError("cannot plan a contraction over zero subcircuits")
    if output_widths is not None and len(output_widths) != len(specs):
        raise ValueError(
            f"output_widths must give one width per spec "
            f"({len(specs)}), got {len(output_widths)}"
        )
    wire_position = {cut.identifier(): p for p, cut in enumerate(solution.wire_cuts)}
    gate_position = {cut.op_index: p for p, cut in enumerate(solution.gate_cuts)}
    axes: List[SpecAxis] = []
    for spec_position, spec in enumerate(specs):
        identifiers = {
            cut.identifier() for cut in list(spec.upstream_cuts) + list(spec.downstream_cuts)
        }
        gate_positions: Tuple[int, ...] = ()
        if kind == "expectation":
            gate_positions = tuple(
                sorted(gate_position[op_index] for op_index in spec.gate_cut_sides)
            )
        axes.append(
            SpecAxis(
                spec_index=spec.index,
                wire_positions=tuple(sorted(wire_position[i] for i in identifiers)),
                gate_positions=gate_positions,
                output_width=(
                    2 ** len(spec.output_qubits)
                    if output_widths is None
                    else int(output_widths[spec_position])
                ),
            )
        )

    num_wire_cuts = len(solution.wire_cuts)
    num_gate_cuts = len(solution.gate_cuts) if kind == "expectation" else 0
    assignments = 4**num_wire_cuts
    instance_combos = 6**num_gate_cuts
    combos = assignments * instance_combos
    output_elements = 1
    for axis in axes:
        output_elements *= axis.output_width
    table_rows = sum(axis.table_rows for axis in axes)

    if kind == "probability":
        # Naive: per assignment, a Python visit per subcircuit plus a kron and
        # a scatter over the full combined vector.
        naive_flops = float(assignments) * (
            len(axes) * PYTHON_VISIT_FLOPS + 2.0 * output_elements
        )
        fill_flops = float(sum(axis.table_rows * axis.output_width for axis in axes))
        fused_flops = 2.0 * assignments * output_elements + fill_flops
    else:
        naive_flops = float(combos) * (len(axes) * PYTHON_VISIT_FLOPS + len(axes) + 2.0)
        fill_flops = float(table_rows) * PYTHON_VISIT_FLOPS
        fused_flops = float(combos) * (len(axes) + 2.0) + fill_flops

    num_shards = 1
    shard_axis = -1
    shard_blocks: Tuple[Tuple[int, int], ...] = ()
    if kind == "probability":
        widths = [axis.output_width for axis in axes]
        # Shard the earliest axis wide enough for the target shard count:
        # column-slicing axis j narrows every kron stage from j onward, while
        # the stages left of j are duplicated in every shard — so the earliest
        # feasible axis minimises the duplicated prefix work.
        target = max(1, min(workers, max(widths)))
        shard_axis = next(
            (index for index, width in enumerate(widths) if width >= target),
            int(np.argmax(widths)),
        )
        if workers > 1 and fused_flops >= MIN_SHARD_FLOPS:
            num_shards = max(1, min(workers, widths[shard_axis]))
        shard_blocks = balanced_blocks(widths[shard_axis], num_shards)
        num_shards = len(shard_blocks)
        # Peak per-shard row width bounds the kron temporaries.
        block_width = max(hi - lo for lo, hi in shard_blocks)
        shard_row_elements = max(1, (output_elements // widths[shard_axis]) * block_width)
    else:
        if workers > 1 and fused_flops >= MIN_SHARD_FLOPS:
            num_shards = max(1, min(workers, max(1, num_terms)))
        shard_row_elements = 1
    chunk_rows = max(1, min(assignments, CHUNK_ELEMENT_BUDGET // shard_row_elements))

    cost = ContractionCost(
        assignments=assignments,
        instance_combos=instance_combos,
        output_elements=output_elements,
        table_rows=table_rows,
        naive_flops=naive_flops,
        fused_flops=fused_flops,
        per_shard_flops=fill_flops + (fused_flops - fill_flops) / num_shards,
    )
    return ContractionPlan(
        kind=kind,
        num_wire_cuts=num_wire_cuts,
        num_gate_cuts=num_gate_cuts,
        axes=tuple(axes),
        shard_axis=shard_axis,
        num_shards=num_shards,
        shard_blocks=shard_blocks,
        chunk_rows=chunk_rows,
        cost=cost,
    )


# --------------------------------------------------------------------- index maps
def assignment_index_maps(plan: ContractionPlan) -> List[np.ndarray]:
    """Per-subcircuit local table row for every global wire-cut assignment.

    The global assignment enumeration is ``itertools.product(BASES, repeat=k)``
    over the solution's wire-cut list: cut ``p`` is the base-4 digit of weight
    ``4**(k-1-p)``.  Each subcircuit's local row index packs *its* cut digits,
    most significant first in ascending cut position — the same order its local
    combination list is enumerated in.
    """
    k = plan.num_wire_cuts
    a = np.arange(4**k, dtype=np.int64)
    maps: List[np.ndarray] = []
    for axis in plan.axes:
        r = np.zeros_like(a)
        for p in axis.wire_positions:
            r = (r << 2) | ((a >> (2 * (k - 1 - p))) & 3)
        maps.append(r)
    return maps


def instance_index_maps(plan: ContractionPlan) -> List[np.ndarray]:
    """Per-subcircuit local instance index for every global gate-cut combination.

    Mirrors :func:`assignment_index_maps` in base 6 over the solution's
    gate-cut list (``itertools.product(range(1, 7), repeat=m)`` order).
    """
    m = plan.num_gate_cuts
    i = np.arange(6**m, dtype=np.int64)
    maps: List[np.ndarray] = []
    for axis in plan.axes:
        r = np.zeros_like(i)
        for p in axis.gate_positions:
            r = r * 6 + (i // (6 ** (m - 1 - p))) % 6
        maps.append(r)
    return maps


def flat_index_maps(plan: ContractionPlan) -> List[np.ndarray]:
    """Per-subcircuit table row for every flat (assignment, instance) combination.

    Flat combination order is assignment-major, instance-minor — exactly the
    naive walk's loop nesting.  Each subcircuit's dense table is laid out the
    same way (``local_row = local_assignment * local_instances + local_instance``).
    """
    assignment_maps = assignment_index_maps(plan)
    instance_maps = instance_index_maps(plan)
    maps: List[np.ndarray] = []
    for axis, amap, imap in zip(plan.axes, assignment_maps, instance_maps):
        maps.append(((amap * axis.local_instances)[:, None] + imap[None, :]).reshape(-1))
    return maps


def output_index_blocks(
    plan: ContractionPlan,
    output_qubit_lists: Sequence[Sequence[int]],
    num_qubits: int,
) -> List[np.ndarray]:
    """Global scatter indices for each shard's block of the combined vector.

    The combined (kron) vector's flat element ``(i_0, ..., i_{S-1})`` — built
    left-to-right over subcircuits, so subcircuit 0 varies slowest — lands at
    global basis index ``sum_s spread_s(i_s)``, where ``spread_s`` places
    subcircuit ``s``'s local bits onto its output qubits (LSB first).  The
    per-subcircuit bit sets are disjoint, so the indices within and across
    blocks are unique: the merge is a pure disjoint write, and an in-place
    fancy ``+=`` on them never aliases.
    """
    spreads: List[np.ndarray] = []
    for qubits in output_qubit_lists:
        for qubit in qubits:
            if qubit >= num_qubits:
                raise ValueError(f"output qubit {qubit} outside circuit")
        local = np.arange(2 ** len(qubits), dtype=np.int64)
        spread = np.zeros_like(local)
        for bit, qubit in enumerate(qubits):
            spread |= ((local >> bit) & 1) << qubit
        spreads.append(spread)
    blocks: List[np.ndarray] = []
    for lo, hi in plan.shard_blocks or ((0, spreads[plan.shard_axis].size),):
        parts = [
            spread if index != plan.shard_axis else spread[lo:hi]
            for index, spread in enumerate(spreads)
        ]
        combined = parts[0]
        for part in parts[1:]:
            combined = np.add.outer(combined, part).reshape(-1)
        blocks.append(combined)
    return blocks


# ------------------------------------------------------------------------ kernels
def contract_probability_shard(
    stacks: Sequence[np.ndarray],
    index_maps: Sequence[np.ndarray],
    coefficient: float,
    chunk_rows: int,
) -> Tuple[np.ndarray, float]:
    """Contract one output-column shard of the probability reconstruction.

    ``stacks[s]`` holds subcircuit ``s``'s effective distributions, one row per
    local assignment (the shard axis's stack arrives column-sliced);
    ``index_maps[s]`` maps each global assignment to its local row.  Follows
    the fixed reduction order documented in the module docstring: per
    assignment a left-associated batched kron, scaled by ``coefficient``, then
    one sequential element-wise ``+=`` per assignment in enumeration order.
    Runs inside a worker process (or in-process for serial/salvage paths) —
    everything it touches is an argument, so shards share no state.

    Returns ``(accumulator, busy_seconds)``.
    """
    start = perf_clock()
    num_assignments = index_maps[0].shape[0]
    width = 1
    for stack in stacks:
        width *= stack.shape[1]
    accumulator = np.zeros(width)
    for begin in range(0, num_assignments, max(1, chunk_rows)):
        end = min(begin + max(1, chunk_rows), num_assignments)
        rows = stacks[0][index_maps[0][begin:end]]
        for stack, index_map in zip(stacks[1:], index_maps[1:]):
            right = stack[index_map[begin:end]]
            rows = (rows[:, :, None] * right[:, None, :]).reshape(rows.shape[0], -1)
        rows = coefficient * rows
        for row in rows:
            accumulator += row
    return accumulator, perf_clock() - start


def contract_expectation_terms(
    index_maps: Sequence[np.ndarray],
    coefficients: np.ndarray,
    jobs: Sequence[Tuple[Sequence[np.ndarray], float]],
) -> Tuple[List[float], float]:
    """Evaluate a block of Pauli-term contractions against dense value tables.

    Each job is ``(tables, inactive_factor)``: per-subcircuit effective
    expectation tables (rows addressed by ``index_maps``, unfilled rows exactly
    ``0.0``) and the term's idle-qubit factor.  ``coefficients`` carries
    ``0.5**k * instance_coefficient`` per flat combination.  The running
    product goes left-to-right in subcircuit order; the final scalar
    accumulation is a sequential Python loop in flat combination order —
    bit-identical to the naive walk (zero-coefficient combinations contribute
    ``±0.0``, which never changes the running sum's bits).

    Returns ``([term_value, ...], busy_seconds)``.
    """
    start = perf_clock()
    values: List[float] = []
    for tables, inactive_factor in jobs:
        product = tables[0][index_maps[0]]
        for table, index_map in zip(tables[1:], index_maps[1:]):
            product = product * table[index_map]
        contributions = coefficients * product
        value = 0.0
        for contribution in contributions.tolist():
            value += contribution
        values.append(value * inactive_factor)
    return values, perf_clock() - start
