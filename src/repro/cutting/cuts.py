"""Cut specifications and the cutting solution produced by the optimiser.

A :class:`CutSolution` holds everything needed to turn an original circuit into
subcircuits:

* which subcircuit every operation (or, for gate-cut gates, every gate *endpoint*)
  is assigned to,
* which wire segments are cut (:class:`WireCut`),
* which two-qubit gates are gate-cut (:class:`GateCut`).

The class also validates internal consistency — every uncut wire segment must join
two endpoints in the same subcircuit, every cut segment must join different
subcircuits — which is the contract the downstream fragment extractor relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..circuits import Circuit, CircuitDag
from ..exceptions import CuttingError

__all__ = ["WireCut", "GateCut", "CutSolution", "GATE_CUT_POST_PROCESSING_BRANCHES",
           "WIRE_CUT_POST_PROCESSING_BRANCHES", "postprocessing_cost", "effective_wire_cuts"]

#: Post-processing branches per wire cut / gate cut (Section 3.2: 4^k vs 6^k).
WIRE_CUT_POST_PROCESSING_BRANCHES = 4
GATE_CUT_POST_PROCESSING_BRANCHES = 6


@dataclass(frozen=True, order=True)
class WireCut:
    """A cut on the wire segment entering ``downstream_op`` on ``qubit``.

    The upstream end (where the measurement goes) is the previous operation on the
    same qubit; the downstream end (where the initialisation goes) is
    ``downstream_op`` itself.
    """

    qubit: int
    downstream_op: int

    def identifier(self) -> str:
        return f"w{self.qubit}_{self.downstream_op}"


@dataclass(frozen=True, order=True)
class GateCut:
    """A gate cut on the two-qubit gate at program index ``op_index``."""

    op_index: int

    def identifier(self) -> str:
        return f"g{self.op_index}"


@dataclass
class CutSolution:
    """A complete cutting decision over ``circuit``.

    Attributes:
        circuit: the circuit the op indices below refer to (usually the padded,
            layer-aligned circuit produced by :class:`repro.core.qr_dag.QRAwareDag`).
        op_subcircuit: subcircuit index for every operation that is *not* gate-cut.
        gate_cut_placement: for every gate-cut op, the pair
            ``(top endpoint subcircuit, bottom endpoint subcircuit)`` where *top*
            is the gate's first operand and *bottom* its second operand.
        wire_cuts / gate_cuts: the chosen cuts.
        metadata: free-form extras (solver status, objective, timings) archived by
            the benchmark harness.
    """

    circuit: Circuit
    op_subcircuit: Dict[int, int]
    wire_cuts: List[WireCut] = field(default_factory=list)
    gate_cuts: List[GateCut] = field(default_factory=list)
    gate_cut_placement: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    metadata: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------ accessors
    @property
    def num_wire_cuts(self) -> int:
        return len(self.wire_cuts)

    @property
    def num_gate_cuts(self) -> int:
        return len(self.gate_cuts)

    @property
    def num_cuts(self) -> int:
        return self.num_wire_cuts + self.num_gate_cuts

    @property
    def subcircuit_indices(self) -> Tuple[int, ...]:
        used = set(self.op_subcircuit.values())
        for top, bottom in self.gate_cut_placement.values():
            used.add(top)
            used.add(bottom)
        return tuple(sorted(used))

    @property
    def num_subcircuits(self) -> int:
        return len(self.subcircuit_indices)

    def is_gate_cut(self, op_index: int) -> bool:
        return any(cut.op_index == op_index for cut in self.gate_cuts)

    def is_wire_cut(self, qubit: int, downstream_op: int) -> bool:
        return WireCut(qubit, downstream_op) in set(self.wire_cuts)

    def endpoint_subcircuit(self, op_index: int, qubit: int) -> int:
        """Subcircuit holding the endpoint of operation ``op_index`` on ``qubit``."""
        operation = self.circuit.operations[op_index]
        if qubit not in operation.qubits:
            raise CuttingError(f"operation {op_index} does not act on qubit {qubit}")
        if op_index in self.gate_cut_placement:
            top, bottom = self.gate_cut_placement[op_index]
            return top if qubit == operation.qubits[0] else bottom
        try:
            return self.op_subcircuit[op_index]
        except KeyError as exc:
            raise CuttingError(f"operation {op_index} has no subcircuit assignment") from exc

    # ------------------------------------------------------------------ metrics
    def two_qubit_gates_per_subcircuit(self) -> Dict[int, int]:
        """Count of (un-cut) two-qubit gates per subcircuit — the #MS metric source."""
        counts: Dict[int, int] = {index: 0 for index in self.subcircuit_indices}
        for op_index, op in enumerate(self.circuit.operations):
            if op.is_two_qubit and op_index not in self.gate_cut_placement:
                counts[self.op_subcircuit[op_index]] += 1
        return counts

    def max_two_qubit_gates(self) -> int:
        """The paper's #MS metric: two-qubit gates in the largest subcircuit."""
        counts = self.two_qubit_gates_per_subcircuit()
        return max(counts.values()) if counts else 0

    def postprocessing_cost(self) -> float:
        """The exponential post-processing branch count ``4^wire * 6^gate``."""
        return postprocessing_cost(self.num_wire_cuts, self.num_gate_cuts)

    def effective_wire_cuts(self) -> float:
        """#EffCuts from Table 2: the wire-cut count with equal post-processing cost."""
        return effective_wire_cuts(self.num_wire_cuts, self.num_gate_cuts)

    # ------------------------------------------------------------------ validation
    def validate(self) -> None:
        """Check the assignment + cuts are mutually consistent (raises on violation)."""
        dag = CircuitDag(self.circuit)
        cut_set = set(self.wire_cuts)
        gate_cut_ops = {cut.op_index for cut in self.gate_cuts}

        if gate_cut_ops != set(self.gate_cut_placement):
            raise CuttingError("gate_cuts and gate_cut_placement disagree")
        for op_index in gate_cut_ops:
            operation = self.circuit.operations[op_index]
            if not operation.is_two_qubit:
                raise CuttingError(f"gate cut on non-two-qubit operation {op_index}")
            top, bottom = self.gate_cut_placement[op_index]
            if top == bottom:
                raise CuttingError(
                    f"gate cut {op_index} places both halves in subcircuit {top}"
                )
        for op_index, op in enumerate(self.circuit.operations):
            if op_index in gate_cut_ops:
                continue
            if op_index not in self.op_subcircuit:
                raise CuttingError(f"operation {op_index} has no subcircuit assignment")

        for cut in cut_set:
            operation = self.circuit.operations[cut.downstream_op]
            if cut.qubit not in operation.qubits:
                raise CuttingError(
                    f"wire cut {cut} names qubit {cut.qubit} not used by its operation"
                )
            if dag.predecessor_on(cut.downstream_op, cut.qubit) is None:
                raise CuttingError(f"wire cut {cut} has no upstream operation")

        for segment in dag.segments(cuttable_only=True):
            upstream_sc = self.endpoint_subcircuit(segment.upstream, segment.qubit)
            downstream_sc = self.endpoint_subcircuit(segment.downstream, segment.qubit)
            cut = WireCut(segment.qubit, segment.downstream) in cut_set
            if cut and upstream_sc == downstream_sc:
                raise CuttingError(
                    f"wire segment on qubit {segment.qubit} into op {segment.downstream} "
                    "is cut but both endpoints share a subcircuit"
                )
            if not cut and upstream_sc != downstream_sc:
                raise CuttingError(
                    f"wire segment on qubit {segment.qubit} into op {segment.downstream} "
                    "joins different subcircuits but is not cut"
                )

    def summary(self) -> str:
        return (
            f"CutSolution(subcircuits={self.num_subcircuits}, "
            f"wire_cuts={self.num_wire_cuts}, gate_cuts={self.num_gate_cuts}, "
            f"max_two_qubit={self.max_two_qubit_gates()})"
        )


def postprocessing_cost(num_wire_cuts: int, num_gate_cuts: int) -> float:
    """``4^w * 6^g`` — the classical post-processing branch count (Section 3.2)."""
    return float(
        WIRE_CUT_POST_PROCESSING_BRANCHES**num_wire_cuts
        * GATE_CUT_POST_PROCESSING_BRANCHES**num_gate_cuts
    )


def effective_wire_cuts(num_wire_cuts: int, num_gate_cuts: int) -> float:
    """Convert a (wire, gate) cut pair into the equivalent pure-wire-cut count.

    Table 2 reports ``#EffCuts`` such that ``4^#EffCuts == 4^w * 6^g``.
    """
    import math

    if num_wire_cuts < 0 or num_gate_cuts < 0:
        raise CuttingError("cut counts must be non-negative")
    return float(
        num_wire_cuts
        + num_gate_cuts
        * math.log(GATE_CUT_POST_PROCESSING_BRANCHES)
        / math.log(WIRE_CUT_POST_PROCESSING_BRANCHES)
    )
