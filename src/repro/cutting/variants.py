"""Concrete executable subcircuit variants.

Wire cuts and gate cuts multiply each subcircuit into a family of *variants*:

* each wire cut measured here contributes a measurement-basis choice (I/X/Y/Z),
* each wire cut initialised here contributes an initialisation-state choice
  (``zero``/``one``/``plus``/``plus_i``),
* each gate cut with an endpoint here contributes a Mitarai–Fujii instance choice
  (1..6),
* expectation-value reconstruction additionally needs the restriction of the Pauli
  term being evaluated, because the subcircuit's original-output qubits must be
  rotated into that term's basis before their (possibly mid-circuit, reuse-related)
  measurement.

This module turns a :class:`~repro.cutting.fragments.SubcircuitSpec` plus one such
setting combination into a concrete dynamic circuit on ``num_wires`` physical qubits,
ready for the exact branching simulator, the shot sampler or the noisy device model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..circuits import Circuit
from ..exceptions import CuttingError
from ..utils.pauli import PauliString
from .cuts import CutSolution, WireCut
from .fragments import Fragment, SubcircuitSpec, _assign_layers
from .gate_cut import GateCutDecomposition, decompose_gate_cut

__all__ = [
    "WIRE_CUT_MEASUREMENT_BASES",
    "WIRE_CUT_INIT_LABELS",
    "VariantSettings",
    "SubcircuitVariant",
    "VariantBuilder",
]

#: Measurement bases for the upstream end of a wire cut.
WIRE_CUT_MEASUREMENT_BASES: Tuple[str, ...] = ("I", "X", "Y", "Z")

#: Initialisation labels for the downstream end of a wire cut.
WIRE_CUT_INIT_LABELS: Tuple[str, ...] = ("zero", "one", "plus", "plus_i")


@dataclass(frozen=True)
class VariantSettings:
    """One choice of cut settings local to a subcircuit.

    Attributes:
        measurement_bases: basis per upstream wire cut (keyed by cut identifier).
        init_labels: initialisation label per downstream wire cut.
        gate_instances: Mitarai–Fujii instance index (1..6) per gate-cut op index.
    """

    measurement_bases: Tuple[Tuple[str, str], ...] = ()
    init_labels: Tuple[Tuple[str, str], ...] = ()
    gate_instances: Tuple[Tuple[int, int], ...] = ()

    @staticmethod
    def build(
        measurement_bases: Mapping[str, str],
        init_labels: Mapping[str, str],
        gate_instances: Mapping[int, int],
    ) -> "VariantSettings":
        return VariantSettings(
            tuple(sorted(measurement_bases.items())),
            tuple(sorted(init_labels.items())),
            tuple(sorted(gate_instances.items())),
        )

    def basis_for(self, cut: WireCut) -> str:
        return dict(self.measurement_bases)[cut.identifier()]

    def label_for(self, cut: WireCut) -> str:
        return dict(self.init_labels)[cut.identifier()]

    def instance_for(self, op_index: int) -> int:
        return dict(self.gate_instances)[op_index]


@dataclass
class SubcircuitVariant:
    """A concrete runnable variant of a subcircuit."""

    subcircuit_index: int
    circuit: Circuit
    num_wires: int
    output_qubit_order: Tuple[int, ...]
    settings: VariantSettings
    mode: str
    pauli_term: Optional[PauliString] = None
    _fingerprint: Optional[str] = field(default=None, repr=False, compare=False)

    @property
    def uses_dynamic_operations(self) -> bool:
        return any(not op.is_unitary for op in self.circuit)

    @property
    def fingerprint(self) -> str:
        """Stable content hash identifying this request to the execution engine.

        Memoised: variant circuits are immutable once built, so the hash is
        computed at most once per object however many contraction terms ask.
        """
        if self._fingerprint is None:
            from ..engine.requests import variant_fingerprint

            self._fingerprint = variant_fingerprint(self)
        return self._fingerprint


class VariantBuilder:
    """Builds every variant circuit for one subcircuit of a cut solution."""

    def __init__(self, solution: CutSolution, spec: SubcircuitSpec) -> None:
        self._solution = solution
        self._spec = spec
        self._circuit = solution.circuit
        self._layer_of = _assign_layers(self._circuit)
        self._decompositions: Dict[int, GateCutDecomposition] = {
            op_index: decompose_gate_cut(self._circuit.operations[op_index])
            for op_index in spec.gate_cut_sides
        }
        self._fragment_of_element: Dict[Tuple[int, int], Fragment] = {}
        for fragment in spec.fragments:
            for element in fragment.elements:
                self._fragment_of_element[(element.op_index, fragment.qubit)] = fragment
        self._sorted_elements = self._sort_elements()

    # ------------------------------------------------------------------ accessors
    @property
    def spec(self) -> SubcircuitSpec:
        return self._spec

    def gate_cut_decomposition(self, op_index: int) -> GateCutDecomposition:
        return self._decompositions[op_index]

    # ------------------------------------------------------------------ building
    def build(
        self,
        settings: VariantSettings,
        mode: str,
        pauli_term: Optional[PauliString] = None,
    ) -> SubcircuitVariant:
        """Build the concrete circuit for one setting combination.

        ``mode`` is ``"probability"`` (all output qubits measured, unsigned) or
        ``"expectation"`` (output qubits measured in the basis dictated by
        ``pauli_term``, signed).
        """
        if mode not in ("probability", "expectation"):
            raise CuttingError(f"unknown variant mode {mode!r}")
        if mode == "expectation" and pauli_term is None:
            pauli_term = PauliString((), 1.0)

        spec = self._spec
        circuit = Circuit(max(spec.num_wires, 1), f"sub{spec.index}")
        wire_started: Dict[int, bool] = {}
        entered_fragments: set = set()

        for fragment, element in self._sorted_elements:
            wire = spec.wire_of_fragment[fragment.index]
            self._ensure_entered(
                circuit, fragment, wire_started, entered_fragments, settings
            )
            self._emit_element(
                circuit, fragment, element, settings, wire_started, entered_fragments
            )
            if fragment.elements[-1] is element:
                self._emit_fragment_exit(
                    circuit, fragment, wire, settings, mode, pauli_term
                )

        return SubcircuitVariant(
            subcircuit_index=spec.index,
            circuit=circuit,
            num_wires=max(spec.num_wires, 1),
            output_qubit_order=tuple(spec.output_qubits),
            settings=settings,
            mode=mode,
            pauli_term=pauli_term,
        )

    # ------------------------------------------------------------------ internals
    def _sort_elements(self) -> List[Tuple[Fragment, object]]:
        """All (fragment, element) pairs sorted by (layer, program index).

        Layer order is a valid topological order of the original circuit and is
        consistent with the interval-based wire scheduling, so reused wires always
        finish their earlier fragment before the later fragment starts.
        """
        pairs = []
        for fragment in self._spec.fragments:
            for element in fragment.elements:
                operation = self._circuit.operations[element.op_index]
                operand_position = operation.qubits.index(fragment.qubit)
                pairs.append((fragment, element, operand_position))
        pairs.sort(
            key=lambda pair: (self._layer_of[pair[1].op_index], pair[1].op_index, pair[2])
        )
        return [(fragment, element) for fragment, element, _ in pairs]

    def _local_wire(self, fragment: Fragment) -> int:
        return self._spec.wire_of_fragment[fragment.index]

    def _ensure_entered(
        self,
        circuit: Circuit,
        fragment: Fragment,
        wire_started: Dict[int, bool],
        entered_fragments: set,
        settings: VariantSettings,
    ) -> None:
        """Emit the fragment's wire preparation (reset + cut initialisation) once."""
        if fragment.index in entered_fragments:
            return
        entered_fragments.add(fragment.index)
        wire = self._local_wire(fragment)
        if wire_started.get(wire):
            circuit.reset(wire, tag=f"reuse:{fragment.qubit}")
        wire_started[wire] = True
        if fragment.entry_cut is None:
            return
        label = settings.label_for(fragment.entry_cut)
        if label == "zero":
            return
        if label == "one":
            circuit.x(wire)
        elif label == "plus":
            circuit.h(wire)
        elif label == "plus_i":
            circuit.h(wire)
            circuit.s(wire)
        else:
            raise CuttingError(f"unknown initialisation label {label!r}")

    def _emit_element(
        self,
        circuit: Circuit,
        fragment: Fragment,
        element: Any,
        settings: VariantSettings,
        wire_started: Dict[int, bool],
        entered_fragments: set,
    ) -> None:
        operation = self._circuit.operations[element.op_index]
        if element.role == "full":
            if operation.is_identity:
                return
            if operation.is_two_qubit:
                # Emit the two-qubit gate only once (when visiting its first operand),
                # making sure the partner fragment's wire preparation happened first.
                if fragment.qubit != operation.qubits[0]:
                    return
                top_fragment = self._fragment_of_element[(element.op_index, operation.qubits[0])]
                bottom_fragment = self._fragment_of_element[
                    (element.op_index, operation.qubits[1])
                ]
                self._ensure_entered(
                    circuit, bottom_fragment, wire_started, entered_fragments, settings
                )
                circuit.add(
                    operation.name,
                    [self._local_wire(top_fragment), self._local_wire(bottom_fragment)],
                    operation.params,
                )
            else:
                circuit.add(operation.name, [self._local_wire(fragment)], operation.params)
            return

        # Gate-cut endpoint: emit this side's share of the chosen instance.
        decomposition = self._decompositions[element.op_index]
        instance = decomposition.instances[settings.instance_for(element.op_index) - 1]
        pre, measure, post = decomposition.side_operations(element.role, instance)
        wire = self._local_wire(fragment)
        for name, params in pre:
            circuit.add(name, [wire], params)
        if measure:
            circuit.measure(wire, tag=f"signed:gate:{element.op_index}:{element.role}")
        for name, params in post:
            circuit.add(name, [wire], params)

    def _emit_fragment_exit(
        self,
        circuit: Circuit,
        fragment: Fragment,
        wire: int,
        settings: VariantSettings,
        mode: str,
        pauli_term: Optional[PauliString],
    ) -> None:
        if fragment.exit_cut is not None:
            basis = settings.basis_for(fragment.exit_cut)
            identifier = fragment.exit_cut.identifier()
            if basis == "I":
                circuit.measure(wire, tag=f"cut:{identifier}")
            elif basis == "Z":
                circuit.measure(wire, tag=f"signed:cut:{identifier}")
            elif basis == "X":
                circuit.h(wire)
                circuit.measure(wire, tag=f"signed:cut:{identifier}")
            elif basis == "Y":
                circuit.sdg(wire)
                circuit.h(wire)
                circuit.measure(wire, tag=f"signed:cut:{identifier}")
            else:
                raise CuttingError(f"unknown measurement basis {basis!r}")
            return

        # Fragment ends at the original circuit output.
        if mode == "probability":
            circuit.measure(wire, tag=f"out:{fragment.qubit}")
            return
        label = pauli_term.label_for(fragment.qubit) if pauli_term else "I"
        if label == "I":
            return
        if label == "X":
            circuit.h(wire)
        elif label == "Y":
            circuit.sdg(wire)
            circuit.h(wire)
        circuit.measure(wire, tag=f"signed:out:{fragment.qubit}")
