"""Fragment extraction: from a :class:`CutSolution` to per-subcircuit wire fragments.

A **fragment** is a maximal run of consecutive operations on one original qubit with
no wire cut in between.  Every fragment belongs to exactly one subcircuit (the
solution validator guarantees this).  A fragment

* *starts* either at the circuit input or at the downstream (initialisation) end of
  a wire cut, and
* *ends* either at the circuit output or at the upstream (measurement) end of a wire
  cut.

Qubit reuse happens when two fragments of the same subcircuit share one physical
wire: the earlier fragment is measured (it ends at a cut or at the circuit output
anyway), the wire is reset, and the later fragment continues on it.  The scheduler in
this module performs that packing with a classic interval-partitioning sweep over the
fragments' layer intervals, which realises exactly the per-layer width the paper's
ILP constrains (Eq. 11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..circuits import Circuit, CircuitDag
from ..exceptions import CuttingError
from .cuts import CutSolution, WireCut

__all__ = ["FragmentElement", "Fragment", "SubcircuitSpec", "extract_subcircuits"]


@dataclass(frozen=True)
class FragmentElement:
    """One operation endpoint inside a fragment.

    ``role`` is ``"full"`` for ordinary operations, or ``"top"`` / ``"bottom"`` when
    the operation is a gate-cut two-qubit gate and only that endpoint lives on this
    fragment's qubit.
    """

    op_index: int
    role: str


@dataclass
class Fragment:
    """A contiguous piece of one original qubit's wire assigned to one subcircuit."""

    index: int
    subcircuit: int
    qubit: int
    elements: List[FragmentElement]
    start_layer: int
    end_layer: int
    entry_cut: Optional[WireCut] = None
    exit_cut: Optional[WireCut] = None

    @property
    def starts_at_input(self) -> bool:
        return self.entry_cut is None

    @property
    def ends_at_output(self) -> bool:
        return self.exit_cut is None

    @property
    def op_indices(self) -> Tuple[int, ...]:
        return tuple(element.op_index for element in self.elements)


@dataclass
class SubcircuitSpec:
    """Everything needed to build and execute one subcircuit.

    Attributes:
        index: subcircuit id from the cut solution.
        fragments: fragments assigned to this subcircuit, in program order of their
            first operation.
        wire_of_fragment: physical wire (0..num_wires-1) assigned to each fragment;
            fragments sharing a wire are qubit-reuse pairs.
        num_wires: physical qubits this subcircuit needs (the paper's subcircuit
            width after reuse).
        upstream_cuts: wire cuts measured in this subcircuit.
        downstream_cuts: wire cuts initialised in this subcircuit.
        gate_cut_sides: mapping gate-cut op index -> side (``"top"``/``"bottom"``)
            hosted by this subcircuit.
        output_qubits: original-circuit qubits whose final state this subcircuit
            holds (fragments ending at the circuit output).
    """

    index: int
    fragments: List[Fragment]
    wire_of_fragment: Dict[int, int]
    num_wires: int
    upstream_cuts: List[WireCut]
    downstream_cuts: List[WireCut]
    gate_cut_sides: Dict[int, str]
    output_qubits: List[int]

    def fragment_on_wire(self, wire: int) -> List[Fragment]:
        """Fragments scheduled on a physical wire, ordered by start layer."""
        chosen = [f for f in self.fragments if self.wire_of_fragment[f.index] == wire]
        return sorted(chosen, key=lambda fragment: fragment.start_layer)

    @property
    def num_reuses(self) -> int:
        """Number of measure-and-reset reuse events in this subcircuit."""
        return len(self.fragments) - self.num_wires


def _assign_layers(circuit: Circuit) -> Dict[int, int]:
    """ASAP layer index of every operation (same scheduling as ``Circuit.layers``)."""
    frontier = [0] * circuit.num_qubits
    layer_of: Dict[int, int] = {}
    for index, op in enumerate(circuit.operations):
        level = max(frontier[q] for q in op.qubits)
        layer_of[index] = level
        for q in op.qubits:
            frontier[q] = level + 1
    return layer_of


def _schedule_wires(fragments: List[Fragment]) -> Tuple[Dict[int, int], int]:
    """Interval-partition fragments onto the minimum number of physical wires.

    Two fragments can share a wire when the earlier one's last layer is strictly
    before the later one's first layer (measurement/initialisation are assumed to
    take no extra depth, matching Section 4.1's assumption).
    """
    ordered = sorted(fragments, key=lambda fragment: (fragment.start_layer, fragment.end_layer))
    wire_last_layer: List[int] = []
    assignment: Dict[int, int] = {}
    for fragment in ordered:
        chosen = None
        for wire, last_layer in enumerate(wire_last_layer):
            if last_layer < fragment.start_layer:
                chosen = wire
                break
        if chosen is None:
            wire_last_layer.append(fragment.end_layer)
            chosen = len(wire_last_layer) - 1
        else:
            wire_last_layer[chosen] = fragment.end_layer
        assignment[fragment.index] = chosen
    return assignment, len(wire_last_layer)


def extract_subcircuits(solution: CutSolution, enable_reuse: bool = True) -> List[SubcircuitSpec]:
    """Split the solution's circuit into per-subcircuit specifications.

    With ``enable_reuse=False`` every fragment gets its own wire (the CutQC
    behaviour: one extra initialisation qubit per incoming cut, no reuse) — used by
    the baseline comparisons.
    """
    solution.validate()
    circuit = solution.circuit
    dag = CircuitDag(circuit)
    layer_of = _assign_layers(circuit)
    cut_lookup = {(cut.qubit, cut.downstream_op): cut for cut in solution.wire_cuts}
    gate_cut_ops = {cut.op_index for cut in solution.gate_cuts}

    fragments: List[Fragment] = []
    for qubit in range(circuit.num_qubits):
        chain = dag.wire_chain(qubit)
        if not chain:
            continue
        current: List[FragmentElement] = []
        entry_cut: Optional[WireCut] = None
        for op_index in chain:
            cut = cut_lookup.get((qubit, op_index))
            if cut is not None and current:
                fragments.append(
                    _close_fragment(
                        len(fragments), solution, qubit, current, layer_of, entry_cut, cut
                    )
                )
                current = []
                entry_cut = cut
            operation = circuit.operations[op_index]
            if op_index in gate_cut_ops:
                role = "top" if qubit == operation.qubits[0] else "bottom"
            else:
                role = "full"
            current.append(FragmentElement(op_index, role))
        if current:
            fragments.append(
                _close_fragment(
                    len(fragments), solution, qubit, current, layer_of, entry_cut, None
                )
            )

    subcircuit_indices = sorted(solution.subcircuit_indices)
    specs: List[SubcircuitSpec] = []
    for subcircuit_index in subcircuit_indices:
        members = [f for f in fragments if f.subcircuit == subcircuit_index]
        members.sort(key=lambda fragment: fragment.start_layer)
        if enable_reuse:
            wire_of_fragment, num_wires = _schedule_wires(members)
        else:
            wire_of_fragment = {f.index: wire for wire, f in enumerate(members)}
            num_wires = len(members)
        upstream = [f.exit_cut for f in members if f.exit_cut is not None]
        downstream = [f.entry_cut for f in members if f.entry_cut is not None]
        gate_sides: Dict[int, str] = {}
        for fragment in members:
            for element in fragment.elements:
                if element.role in ("top", "bottom"):
                    gate_sides[element.op_index] = element.role
        outputs = sorted(f.qubit for f in members if f.ends_at_output)
        specs.append(
            SubcircuitSpec(
                index=subcircuit_index,
                fragments=members,
                wire_of_fragment=wire_of_fragment,
                num_wires=num_wires,
                upstream_cuts=sorted(upstream),
                downstream_cuts=sorted(downstream),
                gate_cut_sides=gate_sides,
                output_qubits=outputs,
            )
        )
    _validate_output_coverage(specs, circuit)
    return specs


def _close_fragment(
    index: int,
    solution: CutSolution,
    qubit: int,
    elements: List[FragmentElement],
    layer_of: Dict[int, int],
    entry_cut: Optional[WireCut],
    exit_cut: Optional[WireCut],
) -> Fragment:
    subcircuits = {
        solution.endpoint_subcircuit(element.op_index, qubit) for element in elements
    }
    if len(subcircuits) != 1:
        raise CuttingError(
            f"fragment on qubit {qubit} spans multiple subcircuits {sorted(subcircuits)}; "
            "the cut solution is inconsistent"
        )
    start_layer = min(layer_of[element.op_index] for element in elements)
    end_layer = max(layer_of[element.op_index] for element in elements)
    return Fragment(
        index=index,
        subcircuit=subcircuits.pop(),
        qubit=qubit,
        elements=list(elements),
        start_layer=start_layer,
        end_layer=end_layer,
        entry_cut=entry_cut,
        exit_cut=exit_cut,
    )


def _validate_output_coverage(specs: Sequence[SubcircuitSpec], circuit: Circuit) -> None:
    """Every original qubit's terminal fragment must appear in exactly one subcircuit."""
    seen: Dict[int, int] = {}
    for spec in specs:
        for qubit in spec.output_qubits:
            if qubit in seen:
                raise CuttingError(
                    f"original qubit {qubit} ends in two subcircuits ({seen[qubit]} and "
                    f"{spec.index})"
                )
            seen[qubit] = spec.index
    active = {q for op in circuit.operations for q in op.qubits}
    missing = active - set(seen)
    if missing:
        raise CuttingError(f"original qubits {sorted(missing)} have no terminal fragment")
