"""Gate cutting: the Mitarai–Fujii virtual two-qubit gate decomposition.

Gate cutting (Section 2.3.2) replaces a two-qubit gate of the form
``exp(i theta A1 (x) A2)`` (with ``A1^2 = A2^2 = I``) by six *instances*, each of
which applies only single-qubit operations on the two operand qubits; the original
expectation value is the coefficient-weighted sum of the instances' expectation
values (Eq. 4 of the paper):

========  ======================  ======================  ================
instance  top-qubit action        bottom-qubit action     coefficient
========  ======================  ======================  ================
1         nothing                 nothing                 cos^2(theta)
2         A1                      A2                      sin^2(theta)
3         signed A1 measurement   exp(+i pi A2 / 4)       +cos sin
4         signed A1 measurement   exp(-i pi A2 / 4)       -cos sin
5         exp(+i pi A1 / 4)       signed A2 measurement   +cos sin
6         exp(-i pi A1 / 4)       signed A2 measurement   -cos sin
========  ======================  ======================  ================

A *signed measurement* measures the operand in the eigenbasis of ``A`` and
multiplies the recorded outcome (+1/-1) into the final estimator; the qubit then
continues (post-measurement state) in its subcircuit.

All gates this repository gate-cuts (``cz``, ``cx``, ``rzz``) are reduced to the
single primitive ``exp(i theta Z (x) Z)`` plus purely local cleanup gates, so
``A1 = A2 = Z`` throughout:

* ``rzz(phi) = exp(-i phi/2 Z(x)Z)``  ->  ``theta = -phi/2``, no local cleanup;
* ``cz = e^{i pi/4} (rz(pi/2) (x) rz(pi/2)) exp(+i pi/4 Z(x)Z)`` -> ``theta = pi/4``
  with an ``rz(pi/2)`` kept locally on each operand (global phase dropped);
* ``cx(c, t) = (I (x) H) cz (I (x) H)`` -> the ``cz`` reduction sandwiched between
  Hadamards on the target.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from ..circuits import Operation
from ..exceptions import CuttingError

__all__ = [
    "GateCutInstanceSide",
    "GateCutInstance",
    "GateCutDecomposition",
    "decompose_gate_cut",
    "CUTTABLE_GATES",
    "NUM_GATE_CUT_INSTANCES",
]

#: Gate names that can be gate-cut.
CUTTABLE_GATES = frozenset({"cz", "cx", "rzz"})

#: The Mitarai–Fujii decomposition always has six instances.
NUM_GATE_CUT_INSTANCES = 6


@dataclass(frozen=True)
class GateCutInstanceSide:
    """What one side (one operand qubit) of a gate-cut instance does.

    Attributes:
        gates: single-qubit gate names (with params) applied at the cut position.
        measure: whether this side performs the signed Z-basis measurement.
    """

    gates: Tuple[Tuple[str, Tuple[float, ...]], ...] = ()
    measure: bool = False


@dataclass(frozen=True)
class GateCutInstance:
    """One of the six instances: a coefficient plus a top-side and bottom-side action."""

    index: int
    coefficient: float
    top: GateCutInstanceSide
    bottom: GateCutInstanceSide


@dataclass(frozen=True)
class GateCutDecomposition:
    """Full decomposition of one two-qubit gate into local cleanup + six instances.

    Attributes:
        gate_name: the original gate.
        theta: angle of the virtual ``exp(i theta Z(x)Z)`` factor.
        top_pre / top_post: local gates applied on the first operand before/after the
            virtual gate position (these appear in *every* instance).
        bottom_pre / bottom_post: same for the second operand.
        instances: the six Mitarai–Fujii instances.
    """

    gate_name: str
    theta: float
    top_pre: Tuple[Tuple[str, Tuple[float, ...]], ...]
    top_post: Tuple[Tuple[str, Tuple[float, ...]], ...]
    bottom_pre: Tuple[Tuple[str, Tuple[float, ...]], ...]
    bottom_post: Tuple[Tuple[str, Tuple[float, ...]], ...]
    instances: Tuple[GateCutInstance, ...]

    def side_operations(
        self, side: str, instance: GateCutInstance
    ) -> Tuple[
        Tuple[Tuple[str, Tuple[float, ...]], ...],
        bool,
        Tuple[Tuple[str, Tuple[float, ...]], ...],
    ]:
        """Return ``(pre gates, measure?, post gates)`` for ``side`` in ``instance``.

        ``pre gates`` = local cleanup-before + the instance's unitary action;
        ``post gates`` = local cleanup-after.  When ``measure`` is True the signed
        measurement happens between the pre and post gates.
        """
        if side == "top":
            action = instance.top
            return self.top_pre + action.gates, action.measure, self.top_post
        if side == "bottom":
            action = instance.bottom
            return self.bottom_pre + action.gates, action.measure, self.bottom_post
        raise CuttingError(f"unknown gate-cut side {side!r}")


def _zz_instances(theta: float) -> Tuple[GateCutInstance, ...]:
    """The six instances for the virtual ``exp(i theta Z(x)Z)`` gate."""
    cos, sin = math.cos(theta), math.sin(theta)
    plus_rotation = (("rz", (-math.pi / 2.0,)),)   # exp(+i pi Z / 4)
    minus_rotation = (("rz", (math.pi / 2.0,)),)   # exp(-i pi Z / 4)
    z_gate = (("z", ()),)
    nothing = GateCutInstanceSide()
    return (
        GateCutInstance(1, cos * cos, nothing, nothing),
        GateCutInstance(
            2, sin * sin, GateCutInstanceSide(z_gate), GateCutInstanceSide(z_gate)
        ),
        GateCutInstance(
            3,
            cos * sin,
            GateCutInstanceSide(measure=True),
            GateCutInstanceSide(plus_rotation),
        ),
        GateCutInstance(
            4,
            -cos * sin,
            GateCutInstanceSide(measure=True),
            GateCutInstanceSide(minus_rotation),
        ),
        GateCutInstance(
            5,
            cos * sin,
            GateCutInstanceSide(plus_rotation),
            GateCutInstanceSide(measure=True),
        ),
        GateCutInstance(
            6,
            -cos * sin,
            GateCutInstanceSide(minus_rotation),
            GateCutInstanceSide(measure=True),
        ),
    )


def decompose_gate_cut(operation: Operation) -> GateCutDecomposition:
    """Build the gate-cut decomposition for a cuttable two-qubit operation."""
    if operation.name not in CUTTABLE_GATES:
        raise CuttingError(
            f"gate {operation.name!r} cannot be gate-cut; supported: {sorted(CUTTABLE_GATES)}"
        )
    none: Tuple[Tuple[str, Tuple[float, ...]], ...] = ()
    if operation.name == "rzz":
        (phi,) = operation.params
        theta = -phi / 2.0
        return GateCutDecomposition(
            "rzz", theta, none, none, none, none, _zz_instances(theta)
        )
    if operation.name == "cz":
        theta = math.pi / 4.0
        local_rz = (("rz", (math.pi / 2.0,)),)
        return GateCutDecomposition(
            "cz", theta, local_rz, none, local_rz, none, _zz_instances(theta)
        )
    # cx(control, target): H on the target before and after a cz cut.
    theta = math.pi / 4.0
    local_rz = (("rz", (math.pi / 2.0,)),)
    hadamard = (("h", ()),)
    return GateCutDecomposition(
        "cx",
        theta,
        top_pre=local_rz,
        top_post=none,
        bottom_pre=hadamard + local_rz,
        bottom_post=hadamard,
        instances=_zz_instances(theta),
    )
