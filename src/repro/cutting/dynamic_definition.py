"""Dynamic-definition reconstruction: heavy-bin zoom for beyond-memory outputs.

Full probability reconstruction materialises the ``2**n`` output vector, so
*output width* — not device width — becomes the scaling wall long before the
subcircuits themselves are hard to execute.  Dynamic definition (CutQC's
``qubit_limit`` / ``recursion_depth`` post-processing) sidesteps it by never
asking for the full distribution:

* the output qubits are partitioned into **active** qubits (at most
  ``qubit_limit`` of them, materialised as bin indices), **merged** qubits
  (summed over — their marginal is folded into the bins) and, below the root,
  **fixed** qubits (pinned to the bit values of the bin being zoomed into),
* one *binned* contraction produces a ``2**active`` vector whose entry ``j``
  is the probability mass of the subset of basis states matching the fixed
  bits and carrying ``j``'s bits on the active qubits,
* the recursive driver scores the bins by probability mass, re-activates the
  next window of merged qubits inside the top ``zoom_fanout`` bins, and
  descends until ``recursion_depth`` levels have been spent — yielding a
  sparse set of fully-resolved heavy basis states plus a mass-coverage bound.

The binned contraction is the planned sharded contraction of
:mod:`repro.cutting.contraction` run over *reduced* per-subcircuit stacks.
Because every output qubit belongs to exactly one subcircuit, summing the
Kronecker product over a merged qubit factorises into summing the one
subcircuit stack that carries it — so each subcircuit's effective-distribution
stack (``4**c_S`` rows by ``2**w_S`` columns) is marginalised over its merged
bits, column-selected on its fixed bits, and handed to the *same*
:func:`~repro.cutting.contraction.contract_probability_shard` kernels, sharded
over :meth:`~repro.engine.ParallelEngine.map_shards`.  The full ``2**n``
vector is never formed; peak memory per recursion level is
``O(2**qubit_limit)`` plus the (tiny) per-subcircuit stacks.

**Bit-identity in the full-width case.**  When every output qubit is active
(``qubit_limit >= num_output_qubits``) the reduction is the identity — each
stack passes through untouched, the plan (built with matching
``output_widths``) is the one the planned contractor uses, and the kernels
therefore produce bit-identical accumulators.  ``benchmarks/bench_dynamic.py``
gates this in CI.

**Streaming.**  Each recursion level can consume the streaming CI machinery:
given the session's per-round chunk history, the driver folds per-chunk binned
contractions through :class:`~repro.service.StreamingMoments` and reports a
per-level confidence half-width next to the zoom decision it annotates.  Bin
*selection* stays a function of the cumulative point estimate only, so a
streaming run-to-completion dynamic-definition result is identical to the
batch one.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ReconstructionError
from ..utils.timing import perf_clock
from .contraction import (
    ContractionReport,
    ShardUtilization,
    assignment_index_maps,
    contract_probability_shard,
    output_index_blocks,
    plan_contraction,
)
from .variants import WIRE_CUT_MEASUREMENT_BASES

__all__ = [
    "BinSpace",
    "DynamicDefinitionPlan",
    "DynamicDefinitionResult",
    "HeavyBin",
    "LevelReport",
    "MASS_COVERAGE_SLACK",
    "binned_probabilities",
    "plan_dynamic_definition",
    "reconstruct_dynamic",
]

#: Floating-point cushion subtracted from the resolved-mass sum so the reported
#: ``covered_mass`` provably lower-bounds the true captured mass under exact
#: executors: the contraction's accumulated rounding is orders of magnitude
#: below this for any workload the library can evaluate.
MASS_COVERAGE_SLACK = 1e-9

#: ``as_dense`` refuses to materialise more elements than this — asking for a
#: dense vector wider than ~2**26 defeats the point of dynamic definition.
_DENSE_ELEMENT_LIMIT = 1 << 26

_GATE_CUT_MESSAGE = (
    "probability vectors cannot be reconstructed after gate cutting; "
    "gate cuts only support expectation values (Section 2.3.2)"
)


@dataclass(frozen=True)
class BinSpace:
    """One recursion level's partition of the output qubits.

    ``active`` qubits (ascending) are materialised — bin index bit ``r``
    carries the value of ``active[r]``.  ``merged`` qubits are summed over.
    ``fixed`` pins qubits zoomed through at earlier levels to the bit values
    of the bin being descended into.
    """

    active: Tuple[int, ...]
    merged: Tuple[int, ...]
    fixed: Tuple[Tuple[int, int], ...] = ()

    @property
    def num_bins(self) -> int:
        """Bins this space materialises (``2**len(active)``)."""
        return 1 << len(self.active)


@dataclass(frozen=True)
class DynamicDefinitionPlan:
    """The recursion schedule for one dynamic-definition reconstruction.

    ``windows`` lists the output qubits in activation order, chunked into
    ascending groups of at most ``qubit_limit``: level ``L`` activates
    ``windows[L]``, pins the qubits of windows ``0..L-1`` to the zoomed bin's
    bits, and merges the rest.  A basis state is fully resolved after
    ``len(windows)`` levels, so ``recursion_depth < len(windows)`` explores
    coarse mass only and resolves nothing.
    """

    qubit_limit: int
    recursion_depth: int
    zoom_fanout: int
    min_bin_mass: float
    output_qubits: Tuple[int, ...]
    windows: Tuple[Tuple[int, ...], ...]

    @property
    def num_output_qubits(self) -> int:
        """Output qubits across all subcircuits."""
        return len(self.output_qubits)

    @property
    def levels_to_resolve(self) -> int:
        """Recursion levels needed to pin every output qubit (``len(windows)``)."""
        return len(self.windows)

    def space(self, level: int, fixed: Tuple[Tuple[int, int], ...]) -> BinSpace:
        """The :class:`BinSpace` of recursion level ``level`` under ``fixed`` bits."""
        merged: List[int] = []
        for window in self.windows[level + 1 :]:
            merged.extend(window)
        return BinSpace(active=self.windows[level], merged=tuple(merged), fixed=fixed)


def plan_dynamic_definition(
    solution: Any,
    specs: Sequence,
    qubit_limit: int,
    recursion_depth: Optional[int] = None,
    zoom_fanout: int = 2,
    min_bin_mass: float = 0.0,
) -> DynamicDefinitionPlan:
    """Build a :class:`DynamicDefinitionPlan` for ``solution``'s output qubits.

    Args:
        solution: the wire-cut-only :class:`~repro.cutting.cuts.CutSolution`
            being reconstructed (gate cuts are rejected — binned probability
            mode inherits the probability path's wire-cut-only contract).
        specs: the subcircuit specs in canonical contraction order.
        qubit_limit: maximum active (materialised) qubits per level; peak bin
            storage per level is ``2**qubit_limit`` floats.
        recursion_depth: recursion levels to spend; ``None`` (default) spends
            exactly enough to fully resolve every zoomed path
            (``ceil(num_output_qubits / qubit_limit)``).
        zoom_fanout: bins descended into per level (the top-``zoom_fanout``
            by probability mass).
        min_bin_mass: bins at or below this mass are never descended into
            (``0.0``, the default, still skips empty and negative bins).

    Returns:
        The plan (activation windows plus the knobs above).
    """
    if solution.gate_cuts:
        raise ReconstructionError(_GATE_CUT_MESSAGE)
    if qubit_limit < 1:
        raise ReconstructionError(f"qubit_limit must be >= 1, got {qubit_limit}")
    if zoom_fanout < 1:
        raise ReconstructionError(f"zoom_fanout must be >= 1, got {zoom_fanout}")
    if min_bin_mass < 0.0:
        raise ReconstructionError(f"min_bin_mass must be >= 0, got {min_bin_mass}")
    output_qubits: List[int] = sorted({q for spec in specs for q in spec.output_qubits})
    if not output_qubits:
        raise ReconstructionError("no subcircuit outputs anything; nothing to bin")
    windows = tuple(
        tuple(output_qubits[start : start + qubit_limit])
        for start in range(0, len(output_qubits), qubit_limit)
    )
    if recursion_depth is None:
        recursion_depth = len(windows)
    if recursion_depth < 1:
        raise ReconstructionError(f"recursion_depth must be >= 1, got {recursion_depth}")
    return DynamicDefinitionPlan(
        qubit_limit=qubit_limit,
        recursion_depth=recursion_depth,
        zoom_fanout=zoom_fanout,
        min_bin_mass=min_bin_mass,
        output_qubits=tuple(output_qubits),
        windows=windows,
    )


@dataclass(frozen=True)
class HeavyBin:
    """One fully-resolved basis state of the sparse heavy-bin distribution."""

    index: int
    bitstring: str
    probability: float

    def row(self) -> Dict[str, object]:
        """Flat dictionary for benchmark tables."""
        return {
            "index": self.index,
            "bitstring": self.bitstring,
            "probability": self.probability,
        }


@dataclass(frozen=True)
class LevelReport:
    """What one visited recursion node saw and decided.

    ``explored_mass`` is the total mass of the bins descended into (or, at a
    resolved leaf, of the bins recorded); ``dropped_mass`` is the positive
    mass left behind at this node.  ``half_width`` is the widest per-bin
    streaming confidence half-width at this node (``None`` without a chunk
    history — batch reconstructions have no variance information).
    """

    level: int
    fixed: Tuple[Tuple[int, int], ...]
    num_bins: int
    explored_mass: float
    dropped_mass: float
    half_width: Optional[float] = None

    def row(self) -> Dict[str, object]:
        """Flat dictionary for benchmark tables."""
        return {
            "level": self.level,
            "fixed_qubits": len(self.fixed),
            "num_bins": self.num_bins,
            "explored_mass": round(self.explored_mass, 9),
            "dropped_mass": round(self.dropped_mass, 9),
            "half_width": None if self.half_width is None else round(self.half_width, 9),
        }


@dataclass(frozen=True)
class DynamicDefinitionResult:
    """A sparse heavy-bin reconstruction with its a-priori mass-coverage bound.

    ``bins`` holds the fully-resolved basis states (descending probability,
    ties by index) discovered within the recursion budget; ``covered_mass``
    lower-bounds the true probability mass those states carry (see
    :data:`MASS_COVERAGE_SLACK`; under finite-shot tables the bound is itself
    a statistical estimate).  ``root_binned`` is the level-0 binned
    distribution over ``root_active``; ``peak_bin_elements`` is the largest
    bin vector any level materialised — the memory bound the bench asserts.
    """

    num_qubits: int
    num_output_qubits: int
    qubit_limit: int
    recursion_depth: int
    zoom_fanout: int
    bins: Tuple[HeavyBin, ...]
    covered_mass: float
    root_binned: np.ndarray = field(repr=False)
    root_active: Tuple[int, ...]
    levels: Tuple[LevelReport, ...] = field(repr=False)
    num_contractions: int
    num_chunk_contractions: int
    peak_bin_elements: int

    def probability(self, index: int) -> float:
        """Resolved probability of basis state ``index`` (``0.0`` if unresolved)."""
        for heavy in self.bins:
            if heavy.index == index:
                return heavy.probability
        return 0.0

    def as_dense(self, num_qubits: Optional[int] = None) -> np.ndarray:
        """Scatter the resolved bins into a dense ``2**num_qubits`` vector.

        Only sensible for small circuits (identity checks, tests); refuses to
        materialise more than ``2**26`` elements — for wide outputs the sparse
        ``bins`` view is the result.
        """
        if num_qubits is None:
            num_qubits = self.num_qubits
        if (1 << num_qubits) > _DENSE_ELEMENT_LIMIT:
            raise ReconstructionError(
                f"as_dense would materialise 2**{num_qubits} elements; use the "
                f"sparse bins instead"
            )
        dense = np.zeros(1 << num_qubits)
        for heavy in self.bins:
            dense[heavy.index] = heavy.probability
        return dense

    def row(self) -> Dict[str, object]:
        """Flat dictionary for benchmark tables and result serialisation."""
        return {
            "num_qubits": self.num_qubits,
            "num_output_qubits": self.num_output_qubits,
            "qubit_limit": self.qubit_limit,
            "recursion_depth": self.recursion_depth,
            "zoom_fanout": self.zoom_fanout,
            "num_resolved_bins": len(self.bins),
            "covered_mass": self.covered_mass,
            "num_contractions": self.num_contractions,
            "num_chunk_contractions": self.num_chunk_contractions,
            "peak_bin_elements": self.peak_bin_elements,
            "bins": [heavy.row() for heavy in self.bins],
            "levels": [report.row() for report in self.levels],
        }


@dataclass(frozen=True)
class _SpecReduction:
    """How one subcircuit's stack folds into a bin space (value-independent)."""

    passthrough: bool
    num_merged: int
    fixed_bits: Tuple[Tuple[int, int], ...]  # (local bit, original qubit)
    base_cols: np.ndarray = field(repr=False)  # (2**active, 2**merged) column gather
    bin_positions: Tuple[int, ...]  # bin-index bit of each local active bit


def _binned_structure(
    reconstructor: Any, space: BinSpace, workers: int
) -> Dict[str, object]:
    """Cached plan, index maps, scatter blocks and stack reductions for ``space``.

    Everything here depends only on the qubit *partition* (not on the fixed
    bit values, which enter as a per-call column offset), so one structure
    serves every bin zoomed at the same recursion level.
    """
    key = (
        "dynamic",
        workers,
        space.active,
        space.merged,
        tuple(qubit for qubit, _ in space.fixed),
    )
    structure = reconstructor._contraction_memo.get(key)
    if structure is not None:
        return structure
    specs = reconstructor.specs
    active_rank = {qubit: rank for rank, qubit in enumerate(space.active)}
    merged_set = set(space.merged)
    fixed_set = {qubit for qubit, _ in space.fixed}
    reductions: List[_SpecReduction] = []
    widths: List[int] = []
    for spec in specs:
        spec_active = [(b, q) for b, q in enumerate(spec.output_qubits) if q in active_rank]
        spec_merged = [b for b, q in enumerate(spec.output_qubits) if q in merged_set]
        spec_fixed = [(b, q) for b, q in enumerate(spec.output_qubits) if q in fixed_set]
        if len(spec_active) + len(spec_merged) + len(spec_fixed) != len(spec.output_qubits):
            missing = [
                q
                for q in spec.output_qubits
                if q not in active_rank and q not in merged_set and q not in fixed_set
            ]
            raise ReconstructionError(
                f"bin space does not cover output qubit(s) {missing} of "
                f"subcircuit {spec.index}"
            )
        num_active = len(spec_active)
        num_merged = len(spec_merged)
        local = np.arange(1 << num_active, dtype=np.int64)
        cols_active = np.zeros_like(local)
        for position, (bit, _) in enumerate(spec_active):
            cols_active |= ((local >> position) & 1) << bit
        merged_index = np.arange(1 << num_merged, dtype=np.int64)
        cols_merged = np.zeros_like(merged_index)
        for position, bit in enumerate(spec_merged):
            cols_merged |= ((merged_index >> position) & 1) << bit
        reductions.append(
            _SpecReduction(
                passthrough=(num_merged == 0 and not spec_fixed),
                num_merged=num_merged,
                fixed_bits=tuple(spec_fixed),
                base_cols=cols_active[:, None] + cols_merged[None, :],
                bin_positions=tuple(active_rank[q] for _, q in spec_active),
            )
        )
        widths.append(1 << num_active)
    plan = plan_contraction(
        reconstructor.solution,
        specs,
        workers=workers,
        kind="probability",
        output_widths=widths,
    )
    wire_cuts = list(reconstructor.solution.wire_cuts)
    combos: List[List[Dict[str, str]]] = []
    for axis in plan.axes:
        identifiers = [wire_cuts[p].identifier() for p in axis.wire_positions]
        combos.append(
            [
                dict(zip(identifiers, bases))
                for bases in itertools.product(
                    WIRE_CUT_MEASUREMENT_BASES, repeat=len(identifiers)
                )
            ]
        )
    structure = {
        "plan": plan,
        "index_maps": assignment_index_maps(plan),
        "blocks": output_index_blocks(
            plan,
            [list(reduction.bin_positions) for reduction in reductions],
            len(space.active),
        ),
        "combos": combos,
        "reductions": reductions,
    }
    reconstructor._contraction_memo[key] = structure
    return structure


def _full_stacks(
    reconstructor: Any,
    combos: Sequence[Sequence[Mapping[str, str]]],
    table: Any,
    missing: str,
    cache: Dict,
) -> List[np.ndarray]:
    """Per-subcircuit effective-distribution stacks over the local assignments."""
    stacks: List[np.ndarray] = []
    for spec, spec_combos in zip(reconstructor.specs, combos):
        stacks.append(
            np.stack(
                [
                    reconstructor._effective_distribution(spec, combo, table, missing, cache)
                    for combo in spec_combos
                ]
            )
        )
    return stacks


def _reduce_stack(
    stack: np.ndarray, reduction: _SpecReduction, fixed_values: Mapping[int, int]
) -> np.ndarray:
    """Marginalise one stack over its merged bits and select its fixed bits.

    The passthrough case returns the stack object untouched — no gather, no
    arithmetic — which is what makes the full-active contraction bit-identical
    to the planned contractor.  With merged bits the per-column sum is exact
    marginalisation; with only fixed bits it is a pure gather.
    """
    if reduction.passthrough:
        return stack
    offset = 0
    for bit, qubit in reduction.fixed_bits:
        offset += int(fixed_values[qubit]) << bit
    cols = reduction.base_cols + offset
    if reduction.num_merged:
        return stack[:, cols].sum(axis=2)  # qrcclint: disable=unstable-reduction -- merged-bit marginalisation over a fixed (rows, bins, merged) gather: shape and stride are identical for every call with this plan, so the reduction order is pinned
    return np.ascontiguousarray(stack[:, cols[:, 0]])


def binned_probabilities(
    reconstructor: Any,
    space: BinSpace,
    table: Any = None,
    missing: str = "execute",
    cache: Optional[Dict] = None,
    stacks: Optional[Sequence[np.ndarray]] = None,
) -> np.ndarray:
    """Contract directly into ``space``'s binned distribution (never ``2**n``).

    Runs the planned sharded probability contraction over reduced stacks:
    entry ``j`` of the returned ``space.num_bins`` vector is the (quasi-)
    probability mass of the basis states matching ``space.fixed`` whose active
    qubits spell ``j``.  ``stacks`` (from a previous call over the same
    ``table``) skips rebuilding the per-subcircuit stacks; otherwise ``table``
    is contracted (and is required).  Shards are dispatched over
    :meth:`~repro.engine.ParallelEngine.map_shards` and the run is recorded on
    ``reconstructor.last_contraction_report`` with mode ``"dynamic"``.
    """
    if reconstructor.solution.gate_cuts:
        raise ReconstructionError(_GATE_CUT_MESSAGE)
    plan_start = perf_clock()
    workers = reconstructor._contraction_workers()
    structure = _binned_structure(reconstructor, space, workers)
    plan = structure["plan"]
    plan_seconds = perf_clock() - plan_start

    contract_start = perf_clock()
    if stacks is None:
        if table is None:
            raise ReconstructionError("binned_probabilities needs a table or prebuilt stacks")
        if cache is None:
            cache = {}
        stacks = _full_stacks(reconstructor, structure["combos"], table, missing, cache)
    fixed_values = {qubit: bit for qubit, bit in space.fixed}
    reduced = [
        _reduce_stack(stack, reduction, fixed_values)
        for stack, reduction in zip(stacks, structure["reductions"])
    ]
    coefficient = 0.5 ** len(reconstructor.solution.wire_cuts)
    tasks = []
    for lo, hi in plan.shard_blocks:
        shard_stacks = [
            stack if index != plan.shard_axis else np.ascontiguousarray(stack[:, lo:hi])
            for index, stack in enumerate(reduced)
        ]
        tasks.append((shard_stacks, structure["index_maps"], coefficient, plan.chunk_rows))
    outputs, fell_back = reconstructor.engine.map_shards(contract_probability_shard, tasks)
    contract_seconds = perf_clock() - contract_start

    merge_start = perf_clock()
    binned = np.zeros(space.num_bins)
    utilization = []
    for shard, (indices, (accumulator, seconds)) in enumerate(
        zip(structure["blocks"], outputs)
    ):
        binned[indices] = accumulator
        utilization.append(
            ShardUtilization(shard=shard, elements=int(indices.size), seconds=seconds)
        )
    merge_seconds = perf_clock() - merge_start
    reconstructor.last_contraction_report = ContractionReport(
        mode="dynamic",
        kind="probability",
        workers=workers,
        num_shards=plan.num_shards,
        plan_seconds=plan_seconds,
        contract_seconds=contract_seconds,
        merge_seconds=merge_seconds,
        serial_fallback=fell_back,
        shards=tuple(utilization),
        plan=plan,
    )
    return binned


def reconstruct_dynamic(
    reconstructor: Any,
    plan: DynamicDefinitionPlan,
    table: Any = None,
    missing: str = "execute",
    chunk_history: Optional[Sequence[Tuple[Mapping, float]]] = None,
    z_value: float = 1.96,
) -> DynamicDefinitionResult:
    """Run the recursive heavy-bin zoom and return the sparse distribution.

    Level 0 bins the first activation window; each visited node descends into
    its top ``plan.zoom_fanout`` bins by mass (skipping bins at or below
    ``plan.min_bin_mass``) with those bins' bits pinned, until
    ``plan.recursion_depth`` levels are spent.  Nodes whose merged set is
    empty resolve their bins into concrete basis states.  ``chunk_history``
    (``(chunk_table, weight)`` pairs from a streaming session) additionally
    folds per-chunk binned contractions through the streaming moments
    machinery, annotating every level with a confidence half-width — selection
    itself stays a function of the cumulative estimate, so streaming
    run-to-completion results equal batch results.

    Args:
        reconstructor: the :class:`~repro.cutting.CutReconstructor` to
            contract through (wire cuts only).
        plan: the recursion schedule from :func:`plan_dynamic_definition`.
        table: results for the enumerated batch; enumerated and executed here
            when omitted.
        missing: the table-miss mode (``"skip"`` composes with pruning).
        chunk_history: optional streaming chunk tables with their shot weights.
        z_value: normal quantile for the per-level half-widths.

    Returns:
        The :class:`DynamicDefinitionResult`.
    """
    if reconstructor.solution.gate_cuts:
        raise ReconstructionError(_GATE_CUT_MESSAGE)
    if table is None:
        table = reconstructor.engine.run_batch(reconstructor.enumerate_probability_requests())
    workers = reconstructor._contraction_workers()
    root_space = plan.space(0, ())
    structure = _binned_structure(reconstructor, root_space, workers)
    cache: Dict = {}
    stacks = _full_stacks(reconstructor, structure["combos"], table, missing, cache)
    chunk_stacks: List[Tuple[List[np.ndarray], float]] = []
    if chunk_history:
        for chunk_table, weight in chunk_history:
            chunk_cache: Dict = {}
            chunk_stacks.append(
                (
                    _full_stacks(
                        reconstructor, structure["combos"], chunk_table, missing, chunk_cache
                    ),
                    float(weight),
                )
            )

    resolved: Dict[int, float] = {}
    levels: List[LevelReport] = []
    state = {"contractions": 0, "chunk_contractions": 0, "peak": 0}
    root_binned: Optional[np.ndarray] = None

    def visit(level: int, fixed: Tuple[Tuple[int, int], ...]) -> None:
        nonlocal root_binned
        space = plan.space(level, fixed)
        binned = binned_probabilities(reconstructor, space, stacks=stacks, missing=missing)
        state["contractions"] += 1
        state["peak"] = max(state["peak"], int(binned.size))
        if level == 0:
            root_binned = binned
        half_width: Optional[float] = None
        if chunk_stacks:
            # Lazy import: repro.service layers above cutting; the moments
            # accumulator is the only piece the zoom consumes.
            from ..service.incremental import StreamingMoments

            moments = StreamingMoments()
            for one_chunk_stacks, weight in chunk_stacks:
                estimate = binned_probabilities(
                    reconstructor, space, stacks=one_chunk_stacks, missing=missing
                )
                state["chunk_contractions"] += 1
                moments.add(estimate, weight=weight)
            half_width = moments.half_width(z_value)

        if not space.merged:
            # Resolved leaf: every bin is a concrete basis state.  Python-int
            # bit spreading keeps indices exact for arbitrarily wide circuits.
            offset = 0
            for qubit, bit in space.fixed:
                offset |= int(bit) << qubit
            explored = 0.0
            for j in np.nonzero(binned)[0]:
                index = offset
                for rank, qubit in enumerate(space.active):
                    index |= ((int(j) >> rank) & 1) << qubit
                resolved[index] = float(binned[j])
                explored += float(binned[j])
            levels.append(
                LevelReport(
                    level=level,
                    fixed=fixed,
                    num_bins=int(binned.size),
                    explored_mass=explored,
                    dropped_mass=0.0,
                    half_width=half_width,
                )
            )
            return

        order = np.argsort(-binned, kind="stable")
        selected: List[int] = []
        if level + 1 < plan.recursion_depth:
            for j in order:
                if len(selected) >= plan.zoom_fanout:
                    break
                if float(binned[j]) <= plan.min_bin_mass:
                    break  # sorted descending: nothing heavier remains
                selected.append(int(j))
        explored = float(sum(binned[j] for j in selected))
        dropped = float(np.sum(np.maximum(binned, 0.0))) - float(
            sum(max(0.0, float(binned[j])) for j in selected)
        )
        levels.append(
            LevelReport(
                level=level,
                fixed=fixed,
                num_bins=int(binned.size),
                explored_mass=explored,
                dropped_mass=max(0.0, dropped),
                half_width=half_width,
            )
        )
        for j in selected:
            bin_bits = tuple(
                (qubit, (j >> rank) & 1) for rank, qubit in enumerate(space.active)
            )
            visit(level + 1, fixed + bin_bits)

    visit(0, ())

    heavy = tuple(
        HeavyBin(
            index=index,
            bitstring=format(index, f"0{reconstructor.solution.circuit.num_qubits}b"),
            probability=probability,
        )
        for index, probability in sorted(resolved.items(), key=lambda kv: (-kv[1], kv[0]))
    )
    raw_mass = float(sum(resolved.values()))
    covered_mass = max(0.0, min(1.0, raw_mass) - MASS_COVERAGE_SLACK)
    return DynamicDefinitionResult(
        num_qubits=reconstructor.solution.circuit.num_qubits,
        num_output_qubits=plan.num_output_qubits,
        qubit_limit=plan.qubit_limit,
        recursion_depth=plan.recursion_depth,
        zoom_fanout=plan.zoom_fanout,
        bins=heavy,
        covered_mass=covered_mass,
        root_binned=root_binned,
        root_active=plan.windows[0],
        levels=tuple(levels),
        num_contractions=state["contractions"],
        num_chunk_contractions=state["chunk_contractions"],
        peak_bin_elements=state["peak"],
    )
