"""Cut-parameter sampling-overhead minimization (ShotQC-style basis weights).

Finite-shot reconstruction draws samples for every subcircuit variant and sums
them with the contraction weights; at a total budget of ``N`` shots split as
``n_f = N * p_f`` the worst-case estimator variance is bounded by

    Var <= (1/N) * sum_f w_f**2 / p_f                                   (*)

where ``w_f`` is variant ``f``'s accumulated |contraction weight| (each
variant records a bounded +/-1 outcome, so its per-shot variance is at most 1).
The *free parameters* of the cut decomposition are the sampling weights of the
basis terms at every cut: how often each measurement basis (I/X/Y/Z) is drawn
at a wire cut's upstream end, each initialisation eigenstate
(``zero``/``one``/``plus``/``plus_i``) at its downstream end, and each of the
six Mitarai-Fujii instances at a gate cut.  This module optimizes those
weights, ShotQC-style ("Enhanced Quantum Circuit Cutting Framework for
Sampling Overhead Reduction", arXiv:2412.17704): one probability simplex per
cut side, a variant's sampling probability being the product of its basis
tokens' weights, minimizing the total-variance bound (*).

Formally, with per-token weights ``q_s(o)`` (simplex ``s``, token ``o``) and
``ptilde_f = prod_{(s,o) in profile(f)} q_s(o)`` the normalised allocation is
``p_f = ptilde_f / sum_g ptilde_g`` and the objective is the scale-invariant

    F(q) = (sum_f w_f**2 / ptilde_f) * (sum_g ptilde_g)

whose value, normalised by the ideal Neyman variance ``(sum_f |w_f|)**2``
(attained at ``p_f ~ |w_f|``), is the *sampling overhead* — ``1.0`` means the
basis weights reach the best split any allocator could produce, larger values
mean wasted shots.  ``F`` is minimized by exact cyclic minimization over the
simplices (each block has the closed-form optimum ``q_s(o) ~
sqrt(A_s(o)/B_s(o))`` — see :func:`optimize_overhead_weights`), optionally
polished by ``scipy.optimize.minimize`` over log-weights when scipy is
available.  Both paths are deterministic: no randomness, fixed sweep order,
ties broken by fingerprint.

The optimized per-variant weights feed the shot allocator
(:func:`repro.engine.allocation.allocate_shots`), the pruning scorer
(:func:`repro.engine.pruning.prune_requests`) and the streaming re-planner;
``optimize_overhead="weights"`` on :class:`repro.engine.EngineConfig` threads
the pass through the pipeline.  With ``"none"`` nothing here runs and every
path stays bit-identical to the unoptimized pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..engine.config import OVERHEAD_MODES
from ..engine.requests import request_key
from ..exceptions import ReproError
from ..utils.timing import perf_clock
from .variants import WIRE_CUT_INIT_LABELS, WIRE_CUT_MEASUREMENT_BASES, SubcircuitVariant

__all__ = [
    "OVERHEAD_MODES",
    "CutBasisWeights",
    "OverheadReport",
    "optimize_overhead_weights",
    "sampling_overhead",
    "sampling_variance_bound",
    "variant_profile",
]

#: Weight floor for basis tokens that only zero-weight variants use: keeps
#: every sampling probability positive (the allocator's one-shot floor still
#: applies) without letting them distort the optimum.
_MIN_TOKEN_WEIGHT = 1e-12

#: Canonical token order per simplex side, for stable reporting.
_TOKEN_ORDER: Dict[str, Tuple[str, ...]] = {  # qrcclint: disable=mutable-default-arg -- read-only constant table (tuple values), never written after import
    "measure": WIRE_CUT_MEASUREMENT_BASES,
    "prepare": WIRE_CUT_INIT_LABELS,
    "instance": ("1", "2", "3", "4", "5", "6"),
}


def variant_profile(variant: SubcircuitVariant) -> Tuple[Tuple[str, str], ...]:
    """The (simplex, token) pairs describing one variant's free cut parameters.

    Args:
        variant: the subcircuit variant whose settings are profiled.

    Returns:
        A sorted tuple of ``(simplex_key, token)`` pairs — one per upstream
        measurement basis (``"measure:<cut>"``), downstream initialisation
        label (``"prepare:<cut>"``) and gate-cut instance
        (``"instance:g<op>"``) in the variant's settings.  A variant of an
        uncut subcircuit has an empty profile (its sampling weight is free of
        the cut simplices).
    """
    settings = variant.settings
    tokens: List[Tuple[str, str]] = []
    for cut_id, basis in settings.measurement_bases:
        tokens.append((f"measure:{cut_id}", basis))
    for cut_id, label in settings.init_labels:
        tokens.append((f"prepare:{cut_id}", label))
    for op_index, instance in settings.gate_instances:
        tokens.append((f"instance:g{op_index}", str(instance)))
    return tuple(sorted(tokens))


def sampling_variance_bound(
    weights: Mapping[str, float], probabilities: Mapping[str, float]
) -> float:
    """Worst-case single-shot variance bound ``sum_f w_f**2 / p_f`` (Eq. *).

    Args:
        weights: accumulated |contraction weight| per fingerprint.
        probabilities: sampling probability per fingerprint (need not be
            normalised; they are normalised here so only the *split* matters).

    Returns:
        The variance bound for a budget of one shot; divide by ``N`` for a
        budget of ``N``.  Fingerprints with zero probability and nonzero
        weight make the bound infinite.
    """
    keys = sorted(weights)
    total = float(sum(max(0.0, float(probabilities.get(key, 0.0))) for key in keys))
    if total <= 0.0:
        raise ReproError("sampling probabilities must have positive total mass")
    bound = 0.0
    for key in keys:
        magnitude = abs(float(weights[key]))
        if magnitude <= 0.0:
            continue
        share = max(0.0, float(probabilities.get(key, 0.0))) / total
        if share <= 0.0:
            return float("inf")
        bound += magnitude * magnitude / share
    return bound


def sampling_overhead(
    weights: Mapping[str, float], probabilities: Mapping[str, float]
) -> float:
    """Variance bound of a split, normalised by the ideal Neyman bound.

    ``1.0`` means ``probabilities`` splits shots as well as any allocation can
    (``p_f ~ |w_f|``); larger values are the multiplicative shot overhead the
    split pays at equal reconstruction error.  ``weights`` and
    ``probabilities`` are per-fingerprint, as in :func:`sampling_variance_bound`.
    """
    ideal = float(sum(abs(float(value)) for value in weights.values())) ** 2
    if ideal <= 0.0:
        return 1.0
    return sampling_variance_bound(weights, probabilities) / ideal


@dataclass(frozen=True)
class CutBasisWeights:
    """Optimized sampling weights for the basis terms of one cut side.

    Attributes:
        cut: the cut identifier (``"w<qubit>_<op>"`` or ``"g<op>"``).
        kind: ``"wire"`` or ``"gate"``.
        side: ``"measure"`` (upstream measurement basis), ``"prepare"``
            (downstream initialisation eigenstate) or ``"instance"``
            (Mitarai-Fujii gate-cut instance).
        tokens: the basis terms observed at this side, in canonical order.
        weights: the optimized sampling weight per token (normalised to sum
            to 1 within this side).
        uniform_share: the pre-optimization weight of every token
            (``1 / len(tokens)``).
    """

    cut: str
    kind: str
    side: str
    tokens: Tuple[str, ...]
    weights: Tuple[float, ...]
    uniform_share: float

    @property
    def max_shift(self) -> float:
        """Largest |optimized - uniform| weight across the side's tokens."""
        return max(
            (abs(weight - self.uniform_share) for weight in self.weights), default=0.0
        )

    def row(self) -> Dict[str, object]:
        """Flat dictionary for benchmark tables."""
        return {
            "cut": self.cut,
            "kind": self.kind,
            "side": self.side,
            "weights": {
                token: round(weight, 4)
                for token, weight in zip(self.tokens, self.weights)
            },
            "max_shift": round(self.max_shift, 4),
        }


@dataclass(frozen=True)
class OverheadReport:
    """What the sampling-overhead optimization pass did, and what it bought.

    Attributes:
        mode: the ``optimize_overhead`` mode the pass ran under (``"weights"``).
        method: how the optimum was found — ``"coordinate"`` (exact cyclic
            simplex minimization) or ``"coordinate+scipy"`` (polished by
            ``scipy.optimize.minimize``).
        iterations: coordinate sweeps performed (plus scipy iterations when
            the polish improved the objective).
        converged: whether the coordinate descent reached its tolerance before
            the iteration cap.
        num_variants: unique variant fingerprints in the model.
        num_simplices: cut sides (probability simplices) optimized over.
        overhead_before: sampling overhead of the uniform split (the
            pre-optimization allocator default), normalised so ``1.0`` is the
            ideal Neyman split.
        overhead_after: sampling overhead of the optimized split.
        effective_allocation: the allocation policy actually applied after the
            pass (the session upgrades ``"uniform"`` to ``"weighted"`` over
            the optimized weights — a uniform split would ignore them);
            ``None`` outside a session.
        optimize_seconds: wall clock the optimization spent.
        cuts: per-cut-side breakdown (:class:`CutBasisWeights`).
    """

    mode: str
    method: str
    iterations: int
    converged: bool
    num_variants: int
    num_simplices: int
    overhead_before: float
    overhead_after: float
    effective_allocation: Optional[str] = None
    optimize_seconds: float = 0.0
    cuts: Tuple[CutBasisWeights, ...] = ()

    @property
    def reduction(self) -> float:
        """Modelled shot reduction at equal error: ``overhead_before / overhead_after``."""
        if self.overhead_after <= 0.0:
            return 1.0
        return self.overhead_before / self.overhead_after

    def row(self) -> Dict[str, object]:
        """Flat dictionary for benchmark tables."""
        return {
            "mode": self.mode,
            "method": self.method,
            "iterations": self.iterations,
            "converged": self.converged,
            "num_variants": self.num_variants,
            "num_simplices": self.num_simplices,
            "overhead_before": round(self.overhead_before, 4),
            "overhead_after": round(self.overhead_after, 4),
            "reduction": round(self.reduction, 4),
            "effective_allocation": self.effective_allocation,
        }


@dataclass
class _OverheadModel:
    """Dense arrays for the objective ``F(q) = V(q) * S(q)``."""

    fingerprints: List[str]
    #: ``a_f = w_f**2`` per fingerprint.
    a: np.ndarray
    #: token index lists per fingerprint (into the flat ``q`` vector).
    profiles: List[Tuple[int, ...]]
    #: flat token metadata: (simplex_key, token) per q index.
    token_info: List[Tuple[str, str]]
    #: q indices grouped by simplex key (sweep order = sorted keys).
    simplices: Dict[str, List[int]] = field(default_factory=dict)

    def ptilde(self, q: np.ndarray) -> np.ndarray:
        values = np.ones(len(self.fingerprints))
        for index, profile in enumerate(self.profiles):
            for position in profile:
                values[index] *= q[position]
        return values

    def objective(self, q: np.ndarray) -> float:
        ptilde = self.ptilde(q)
        variance = float(np.sum(self.a / ptilde))
        scale = float(np.sum(ptilde))
        return variance * scale


def _build_model(
    batch: Iterable[SubcircuitVariant], weights: Mapping[str, float]
) -> _OverheadModel:
    """Collect the unique-fingerprint profiles and weights into dense arrays."""
    profile_of: Dict[str, Tuple[Tuple[str, str], ...]] = {}
    for variant in batch:
        key = request_key(variant)
        if key not in profile_of:
            # First-seen profile wins: distinct settings can (rarely) build
            # identical circuits, and the accumulated weight is per
            # fingerprint anyway.
            profile_of[key] = variant_profile(variant)
    fingerprints = sorted(profile_of)
    token_index: Dict[Tuple[str, str], int] = {}
    token_info: List[Tuple[str, str]] = []
    profiles: List[Tuple[int, ...]] = []
    for key in fingerprints:
        positions = []
        for simplex_key, token in profile_of[key]:
            pair = (simplex_key, token)
            if pair not in token_index:
                token_index[pair] = len(token_info)
                token_info.append(pair)
            positions.append(token_index[pair])
        profiles.append(tuple(positions))
    a = np.array(
        [abs(float(weights.get(key, 0.0))) ** 2 for key in fingerprints]
    )
    model = _OverheadModel(
        fingerprints=fingerprints, a=a, profiles=profiles, token_info=token_info
    )
    for position, (simplex_key, _) in enumerate(token_info):
        model.simplices.setdefault(simplex_key, []).append(position)
    return model


def _coordinate_descent(
    model: _OverheadModel, max_iterations: int, tolerance: float
) -> Tuple[np.ndarray, int, bool]:
    """Exact cyclic minimization of ``F`` over the per-cut simplices.

    Holding every other simplex fixed, the block optimum for simplex ``s`` is
    closed-form: with ``r_f = ptilde_f / q_s(token(f))`` the objective splits
    into ``(sum_o A_o/q_o + C)(sum_o B_o q_o + D)`` with ``A_o = sum a_f/r_f``,
    ``B_o = sum r_f`` over the variants using token ``o`` and ``C``/``D`` the
    untouched variants' contributions; the minimum over any fixed
    ``sigma = sum B q`` is at ``q_o ~ sqrt(A_o/B_o)`` and the optimal scale is
    ``sigma* = sqrt(D/C) * sum_o sqrt(A_o B_o)``.  Each sweep therefore never
    increases ``F``, and the sweep order (sorted simplex keys) is fixed, so
    the result is deterministic.
    """
    q = np.ones(len(model.token_info))
    previous = model.objective(q)
    converged = False
    sweeps = 0
    order = sorted(model.simplices)
    for sweeps in range(1, max_iterations + 1):
        for simplex_key in order:
            positions = model.simplices[simplex_key]
            ptilde = model.ptilde(q)
            a_block = np.zeros(len(positions))
            b_block = np.zeros(len(positions))
            touched = np.zeros(len(model.fingerprints), dtype=bool)
            for slot, position in enumerate(positions):
                for index, profile in enumerate(model.profiles):
                    if position in profile:
                        touched[index] = True
                        r = ptilde[index] / q[position]
                        if r > 0.0:
                            a_block[slot] += model.a[index] / r
                            b_block[slot] += r
            rest_variance = float(np.sum(model.a[~touched] / ptilde[~touched]))
            rest_scale = float(np.sum(ptilde[~touched]))
            b_block = np.maximum(b_block, _MIN_TOKEN_WEIGHT)
            shape = np.sqrt(np.maximum(a_block, 0.0) / b_block)
            shape = np.maximum(shape, _MIN_TOKEN_WEIGHT)
            cross = float(np.sum(np.sqrt(np.maximum(a_block, 0.0) * b_block)))
            if rest_variance > 0.0 and rest_scale > 0.0 and cross > 0.0:
                sigma = float(np.sqrt(rest_scale / rest_variance)) * cross
                scale = sigma / float(np.sum(b_block * shape))
            else:
                # Every variant touches this simplex (or the remainder is
                # empty): the scale is a global gauge freedom, pin it to 1.
                scale = 1.0 / max(float(np.sum(b_block * shape)), _MIN_TOKEN_WEIGHT)
            for slot, position in enumerate(positions):
                q[position] = max(shape[slot] * scale, _MIN_TOKEN_WEIGHT)
        current = model.objective(q)
        if previous - current <= tolerance * max(previous, 1.0):
            converged = True
            break
        previous = current
    return q, sweeps, converged


def _scipy_polish(
    model: _OverheadModel, q: np.ndarray
) -> Tuple[np.ndarray, int, bool]:
    """Refine a coordinate-descent optimum with L-BFGS-B over log-weights.

    Returns ``(q, iterations, used)`` — the polished weights only when scipy
    is importable *and* strictly improved the objective; otherwise the input
    is returned unchanged (``used = False``).
    """
    try:
        from scipy.optimize import minimize
    except ImportError:  # pragma: no cover - scipy is part of the toolchain
        return q, 0, False

    def objective_log(theta: np.ndarray) -> float:
        return float(np.log(max(model.objective(np.exp(theta)), _MIN_TOKEN_WEIGHT)))

    result = minimize(
        objective_log,
        np.log(np.maximum(q, _MIN_TOKEN_WEIGHT)),
        method="L-BFGS-B",
        options={"maxiter": 200},
    )
    polished = np.maximum(np.exp(np.asarray(result.x)), _MIN_TOKEN_WEIGHT)
    if model.objective(polished) < model.objective(q):
        return polished, int(result.nit), True
    return q, 0, False


def _cut_breakdown(model: _OverheadModel, q: np.ndarray) -> Tuple[CutBasisWeights, ...]:
    """Normalised per-cut-side weight tables, in sorted simplex order."""
    breakdown: List[CutBasisWeights] = []
    for simplex_key in sorted(model.simplices):
        side, _, cut = simplex_key.partition(":")
        positions = model.simplices[simplex_key]
        observed = {model.token_info[position][1]: position for position in positions}
        canonical = [token for token in _TOKEN_ORDER.get(side, ()) if token in observed]
        canonical += sorted(token for token in observed if token not in canonical)
        raw = np.array([q[observed[token]] for token in canonical])
        total = float(np.sum(raw))
        shares = raw / total if total > 0.0 else np.full(len(raw), 1.0 / max(len(raw), 1))
        breakdown.append(
            CutBasisWeights(
                cut=cut,
                kind="gate" if cut.startswith("g") else "wire",
                side=side,
                tokens=tuple(canonical),
                weights=tuple(float(share) for share in shares),
                uniform_share=1.0 / max(len(canonical), 1),
            )
        )
    return tuple(breakdown)


def optimize_overhead_weights(
    batch: Sequence[SubcircuitVariant],
    weights: Mapping[str, float],
    *,
    max_iterations: int = 100,
    tolerance: float = 1e-10,
    use_scipy: bool = True,
) -> Tuple[Dict[str, float], OverheadReport]:
    """Optimize the per-cut basis sampling weights for an enumerated batch.

    Args:
        batch: the phase-one enumeration output (may contain duplicate
            fingerprints; the first-seen variant provides each fingerprint's
            cut-parameter profile).
        weights: accumulated |contraction weight| per fingerprint, as
            collected by the enumeration walk's ``weights_out``.
        max_iterations: cap on exact coordinate-descent sweeps.
        tolerance: relative objective-improvement threshold that declares
            convergence.
        use_scipy: additionally polish the coordinate optimum with
            ``scipy.optimize.minimize`` (kept only when it strictly improves
            the objective; silently skipped when scipy is unavailable).

    Returns:
        ``(optimized_weights, report)`` — a normalised per-fingerprint
        sampling-weight mapping (sums to 1; feed it to
        :func:`repro.engine.allocation.allocate_shots` as ``weights=`` with
        the ``"weighted"`` policy, and to
        :func:`repro.engine.pruning.prune_requests` as the score) and the
        :class:`OverheadReport` with the pre/post overhead and per-cut
        breakdown.  Both are deterministic functions of the inputs.
    """
    if not batch:
        raise ReproError("cannot optimize sampling overhead over an empty batch")
    model = _build_model(batch, weights)
    start = perf_clock()
    q, sweeps, converged = _coordinate_descent(model, max_iterations, tolerance)
    method = "coordinate"
    iterations = sweeps
    if use_scipy:
        q, extra, used = _scipy_polish(model, q)
        if used:
            method = "coordinate+scipy"
            iterations += extra

    count = len(model.fingerprints)
    magnitudes = np.sqrt(model.a)
    ideal = float(np.sum(magnitudes)) ** 2
    uniform_bound = count * float(np.sum(model.a))
    optimized_bound = model.objective(q)
    if optimized_bound > uniform_bound:
        # Never hand the allocator a split worse than the uniform default.
        q = np.ones_like(q)
        optimized_bound = uniform_bound
    ptilde = model.ptilde(q)
    total = float(np.sum(ptilde))
    optimized = {
        key: float(value / total) for key, value in zip(model.fingerprints, ptilde)
    }
    report = OverheadReport(
        mode="weights",
        method=method,
        iterations=iterations,
        converged=converged,
        num_variants=count,
        num_simplices=len(model.simplices),
        overhead_before=uniform_bound / ideal if ideal > 0.0 else 1.0,
        overhead_after=optimized_bound / ideal if ideal > 0.0 else 1.0,
        optimize_seconds=perf_clock() - start,
        cuts=_cut_breakdown(model, q),
    )
    return optimized, report
