"""Classical post-processing: recombining subcircuit results into the original result.

Two reconstruction modes mirror Section 4.3 of the paper:

* **probability vectors** (wire cuts only): for every assignment of a Pauli basis to
  every cut, the upstream subcircuit contributes a sign-weighted distribution and the
  downstream subcircuit contributes an eigenstate-decomposition-weighted
  distribution; the Kronecker product of the per-subcircuit vectors, summed over all
  ``4^k`` assignments with a ``1/2`` factor per cut, is the original distribution
  (Eq. 3),
* **expectation values** (wire + gate cuts): the same contraction evaluated per
  Pauli term of the observable, with every gate cut additionally summed over its six
  Mitarai–Fujii instances weighted by the instance coefficients (Eq. 4 / 19).

Reconstruction is **two-phase**.  Phase one *enumerates*: the contraction loops are
walked once without executing anything, collecting every ``(subcircuit, settings,
pauli_term)`` variant the contraction will need into one batch (per-subcircuit
*plans* — weighted variant lists — are memoised along the way).  The batch goes to
the execution engine (:mod:`repro.engine`), which dedups it by fingerprint,
satisfies repeats from the shared cache and runs the unique requests, serially or
across a worker pool.  Phase two *contracts*: the same loops are walked again,
reading every subcircuit value from the results table — no executor calls happen
inside the contraction.  The exponential cost is ``4^k * 6^m`` scalar work plus
``prod_S 4^(cuts touching S) * 6^(gate cuts touching S)`` subcircuit evaluations,
and the evaluations are now batchable and parallelisable.

Between the two phases an optional *pruning* pass (:mod:`repro.engine.pruning`)
may drop small-|contraction-weight| requests; phase two then contracts over the
resulting *partial* table with ``missing="skip"`` — an absent variant contributes
exactly zero, and the induced bias is bounded a priori by the pruning report.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..engine import CONTRACTION_MODES, ParallelEngine, VariantResult, request_key
from ..exceptions import ReconstructionError
from ..utils.pauli import PauliObservable, PauliString
from ..utils.timing import perf_clock
from .contraction import (
    ContractionReport,
    ShardUtilization,
    assignment_index_maps,
    balanced_blocks,
    contract_expectation_terms,
    contract_probability_shard,
    flat_index_maps,
    output_index_blocks,
    plan_contraction,
)
from .cuts import CutSolution
from .executors import VariantExecutor
from .fragments import SubcircuitSpec, extract_subcircuits
from .gate_cut import decompose_gate_cut
from .variants import (
    WIRE_CUT_MEASUREMENT_BASES,
    SubcircuitVariant,
    VariantBuilder,
    VariantSettings,
)

__all__ = ["INIT_STATE_DECOMPOSITION", "CutReconstructor"]

#: Decomposition of each measurement-basis operator into initialisation eigenstates:
#: ``P = sum_s coefficient(s) |s><s|`` (the downstream half of Eq. 3).
INIT_STATE_DECOMPOSITION: Dict[str, Tuple[Tuple[str, float], ...]] = {  # qrcclint: disable=mutable-default-arg -- read-only constant table (tuple values), never written after import
    "I": (("zero", 1.0), ("one", 1.0)),
    "Z": (("zero", 1.0), ("one", -1.0)),
    "X": (("plus", 2.0), ("zero", -1.0), ("one", -1.0)),
    "Y": (("plus_i", 2.0), ("zero", -1.0), ("one", -1.0)),
}

#: A plan: the weighted variants whose results combine into one effective
#: subcircuit value (the downstream-decomposition sum of Eq. 3).
Plan = List[Tuple[float, SubcircuitVariant]]


class CutReconstructor:
    """Reconstructs the original circuit's output from a cut solution.

    Execution is delegated to an engine: pass ``engine`` to control batching and
    parallelism, or ``executor`` to keep the legacy single-backend interface (a
    serial engine is wrapped around it).

    Args:
        solution: the cut solution to reconstruct from.
        specs: pre-extracted subcircuit specs; extracted from ``solution``
            (honouring ``enable_reuse``) when omitted.
        executor: a single :class:`~repro.cutting.executors.VariantExecutor`
            backend; mutually exclusive with ``engine``.
        enable_reuse: apply the qubit-reuse pass when this constructor extracts
            the subcircuits itself (ignored when ``specs`` is given).
        engine: a :class:`~repro.engine.ParallelEngine` to execute variant
            batches through (shared caches, worker pools).

    Example::

        reconstructor = CutReconstructor(plan.solution, specs=plan.subcircuits)
        value = reconstructor.reconstruct_expectation(observable)
    """

    def __init__(
        self,
        solution: CutSolution,
        specs: Optional[Sequence[SubcircuitSpec]] = None,
        executor: Optional[VariantExecutor] = None,
        enable_reuse: bool = True,
        engine: Optional[ParallelEngine] = None,
    ) -> None:
        self.solution = solution
        self.specs: List[SubcircuitSpec] = list(
            specs if specs is not None else extract_subcircuits(solution, enable_reuse)
        )
        if engine is None:
            # executor=None lets the engine build its configured default exact
            # backend (the vectorized batched executor, unless EngineConfig
            # says otherwise).
            engine = ParallelEngine(executor)
        elif executor is not None and engine.executor is not executor:
            raise ReconstructionError(
                "pass either an executor or an engine, not two different backends"
            )
        self.engine = engine
        self.executor = engine.executor
        self._builders: Dict[int, VariantBuilder] = {
            spec.index: VariantBuilder(solution, spec) for spec in self.specs
        }
        self._gate_cut_instances: Dict[int, Tuple[float, ...]] = {}
        for cut in solution.gate_cuts:
            decomposition = decompose_gate_cut(solution.circuit.operations[cut.op_index])
            self._gate_cut_instances[cut.op_index] = tuple(
                instance.coefficient for instance in decomposition.instances
            )
        self._variant_memo: Dict[Tuple, SubcircuitVariant] = {}
        self._distribution_plans: Dict[Tuple, Plan] = {}
        self._expectation_plans: Dict[Tuple, Plan] = {}
        # Structure-only contraction state (plans, index maps, combination
        # lists) keyed by (kind, workers[, num_terms]).  These never depend on
        # the results table, so caching them across calls is safe — unlike the
        # per-call effective-value memos below.
        self._contraction_memo: Dict[Tuple, Dict[str, object]] = {}
        #: How the most recent reconstruct_* call's contraction ran (stage
        #: timings, shard utilization); ``None`` before the first call.
        self.last_contraction_report: Optional[ContractionReport] = None

    # ------------------------------------------------------------------ public API
    @property
    def num_variant_evaluations(self) -> int:
        """Unique subcircuit circuit executions performed so far (dedup-aware)."""
        return self.engine.executions

    def enumerate_probability_requests(
        self, weights_out: Optional[Dict[str, float]] = None
    ) -> List[SubcircuitVariant]:
        """Phase one of probability reconstruction: every variant the contraction needs.

        The returned batch may contain duplicates across plans; the engine dedups
        by fingerprint.  Benchmarks use this to drive :meth:`ParallelEngine.run_batch`
        directly.  ``weights_out``, when given, accumulates each fingerprint's
        |contraction weight| during the same walk (for shot allocation), so no
        second pass over the exponential loop is needed.
        """
        if self.solution.gate_cuts:
            raise ReconstructionError(
                "probability vectors cannot be reconstructed after gate cutting; "
                "gate cuts only support expectation values (Section 2.3.2)"
            )
        batch: List[SubcircuitVariant] = []
        scheduled: set = set()
        base = 0.5 ** len(self.solution.wire_cuts)
        for assignment in self._wire_cut_assignments():
            for spec in self.specs:
                key, plan = self._distribution_plan(spec, assignment)
                if weights_out is not None:
                    for weight, variant in plan:
                        fingerprint = request_key(variant)
                        weights_out[fingerprint] = weights_out.get(fingerprint, 0.0) + abs(
                            base * weight
                        )
                if key not in scheduled:
                    scheduled.add(key)
                    batch.extend(variant for _, variant in plan)
        return batch

    def enumerate_expectation_requests(
        self,
        observable: PauliObservable,
        weights_out: Optional[Dict[str, float]] = None,
    ) -> List[SubcircuitVariant]:
        """Phase one of expectation reconstruction for every term of ``observable``.

        ``weights_out``, when given, accumulates each fingerprint's |contraction
        weight| during the same walk (see :meth:`enumerate_probability_requests`).
        """
        batch: List[SubcircuitVariant] = []
        scheduled: set = set()
        for term in observable.terms:
            self._enumerate_term(term, batch, scheduled, weights_out)
        return batch

    def probability_request_weights(self) -> Dict[str, float]:
        """Accumulated |contraction weight| per fingerprint for probability mode.

        A variant requested from several contraction terms accumulates the
        magnitudes of all of them, so the weights are a proxy for how strongly
        each variant's statistical error propagates into the reconstructed
        distribution — the ``"weighted"``/``"variance"`` shot-allocation
        policies split the budget proportionally to these.  Callers that also
        need the batch should pass ``weights_out`` to
        :meth:`enumerate_probability_requests` instead of walking twice.
        """
        weights: Dict[str, float] = {}
        self.enumerate_probability_requests(weights_out=weights)
        return weights

    def expectation_request_weights(self, observable: PauliObservable) -> Dict[str, float]:
        """Accumulated |contraction weight| per fingerprint for expectation mode.

        See :meth:`probability_request_weights`; callers that also need the
        batch should pass ``weights_out`` to
        :meth:`enumerate_expectation_requests` instead of walking twice.
        """
        weights: Dict[str, float] = {}
        self.enumerate_expectation_requests(observable, weights_out=weights)
        return weights

    def reconstruct_probabilities(
        self,
        table: Optional[Mapping[str, VariantResult]] = None,
        missing: str = "execute",
        contraction: Optional[str] = None,
        qubit_limit: Optional[int] = None,
        recursion_depth: Optional[int] = None,
        zoom_fanout: int = 2,
    ) -> np.ndarray:
        """Full probability vector of the original circuit (wire cuts only).

        Args:
            table: results for the enumerated batch, for callers who already
                executed it (e.g. to apply a shot allocation first); by default
                the batch is enumerated and executed here.
            missing: what to do when the contraction needs a variant absent
                from ``table`` — ``"execute"`` (default) runs it on demand
                through the engine, ``"skip"`` treats its contribution as
                exactly zero (truncated contraction over a *pruned* batch, see
                :mod:`repro.engine.pruning`), ``"error"`` raises
                :class:`~repro.exceptions.ReconstructionError`.
            contraction: ``"planned"`` (cost-modelled vectorized kernels,
                sharded across the engine's contraction workers) or
                ``"naive"`` (the serial scalar walk); ``None`` (default) uses
                the engine config's ``contraction`` mode.  Both paths are
                bit-identical (see :mod:`repro.cutting.contraction`); only
                wall clock differs.  The run's stage timings and shard
                utilization land on :attr:`last_contraction_report`.
            qubit_limit: switch to *dynamic definition*: never materialise the
                ``2**n`` vector; instead contract into binned distributions of
                at most ``2**qubit_limit`` elements per recursion level and
                zoom into the heavy bins (see
                :mod:`repro.cutting.dynamic_definition`).  The return type
                changes to
                :class:`~repro.cutting.DynamicDefinitionResult`.
                Requires the planned contraction mode.
            recursion_depth: recursion levels for the dynamic-definition zoom
                (needs ``qubit_limit``); ``None`` resolves every zoomed path
                fully.
            zoom_fanout: bins descended into per dynamic-definition level
                (needs ``qubit_limit``; ignored otherwise).

        Returns:
            The reconstructed quasi-probability vector over all
            ``2**num_qubits`` basis states (exact probabilities for exact
            executors; a statistical/truncated estimate otherwise) — or, with
            ``qubit_limit``, the sparse
            :class:`~repro.cutting.DynamicDefinitionResult`.
        """
        self._check_missing_mode(missing)
        mode = self._resolve_contraction(contraction)
        if qubit_limit is None and recursion_depth is not None:
            raise ReconstructionError("recursion_depth needs qubit_limit (dynamic definition)")
        if table is None and qubit_limit is None:
            table = self.engine.run_batch(self.enumerate_probability_requests())
        elif self.solution.gate_cuts:
            raise ReconstructionError(
                "probability vectors cannot be reconstructed after gate cutting; "
                "gate cuts only support expectation values (Section 2.3.2)"
            )
        if qubit_limit is not None:
            if mode != "planned":
                raise ReconstructionError(
                    "dynamic definition (qubit_limit) requires the planned "
                    "contraction mode; the naive walk materialises the full vector"
                )
            from .dynamic_definition import plan_dynamic_definition, reconstruct_dynamic

            dd_plan = plan_dynamic_definition(
                self.solution,
                self.specs,
                qubit_limit=qubit_limit,
                recursion_depth=recursion_depth,
                zoom_fanout=zoom_fanout,
            )
            return reconstruct_dynamic(self, dd_plan, table=table, missing=missing)
        # Effective-value memos are per call: successive calls may pass tables
        # with different values (different seeds, allocations or prunings), so
        # reusing memos across calls would silently return stale results.  The
        # memo also never crosses the process boundary — shard workers receive
        # dense value tables, not this cache.
        cache: Dict[Tuple, np.ndarray] = {}
        if mode == "planned":
            return self._reconstruct_probabilities_planned(table, missing, cache)
        return self._reconstruct_probabilities_naive(table, missing, cache)

    def reconstruct_expectation(
        self,
        observable: PauliObservable,
        table: Optional[Mapping[str, VariantResult]] = None,
        missing: str = "execute",
        contraction: Optional[str] = None,
    ) -> float:
        """Expectation value of ``observable`` on the original circuit's output.

        Args:
            observable: the Pauli observable to reconstruct.
            table: results for the enumerated batch, for callers who already
                executed it (e.g. to apply a shot allocation first).
            missing: what to do when the contraction needs a variant absent
                from ``table`` — ``"execute"`` (default) runs it on demand,
                ``"skip"`` contributes exactly zero (truncated contraction over
                a pruned batch), ``"error"`` raises.
            contraction: ``"planned"`` (vectorized kernels, observable terms
                sharded across the engine's contraction workers) or
                ``"naive"`` (the serial scalar walk); ``None`` (default) uses
                the engine config's ``contraction`` mode.  Bit-identical
                either way; see :meth:`reconstruct_probabilities`.

        Returns:
            The reconstructed expectation value (a float).
        """
        self._check_missing_mode(missing)
        mode = self._resolve_contraction(contraction)
        if table is None:
            table = self.engine.run_batch(self.enumerate_expectation_requests(observable))
        # Per-call memos, for the same staleness reason as reconstruct_probabilities.
        cache: Dict[Tuple, float] = {}
        if mode == "planned":
            return self._reconstruct_expectation_planned(observable, table, missing, cache)
        return self._reconstruct_expectation_naive(observable, table, missing, cache)

    @staticmethod
    def _check_missing_mode(missing: str) -> None:
        if missing not in ("execute", "skip", "error"):
            raise ReconstructionError(
                f"missing must be 'execute', 'skip' or 'error', got {missing!r}"
            )

    def _resolve_contraction(self, contraction: Optional[str]) -> str:
        if contraction is None:
            contraction = getattr(self.engine.config, "contraction", "planned")
        if contraction not in CONTRACTION_MODES:
            raise ReconstructionError(
                f"contraction must be one of {CONTRACTION_MODES}, got {contraction!r}"
            )
        return contraction

    # ------------------------------------------------------- naive contraction paths
    def _reconstruct_probabilities_naive(
        self,
        table: Mapping[str, VariantResult],
        missing: str,
        cache: Dict[Tuple, np.ndarray],
    ) -> np.ndarray:
        """The serial scalar walk: one kron + scatter per global assignment."""
        contract_start = perf_clock()
        num_qubits = self.solution.circuit.num_qubits
        total = np.zeros(2**num_qubits)
        coefficient_per_assignment = 0.5 ** len(self.solution.wire_cuts)
        # The qubit order (and therefore the scatter index map) is the same for
        # every assignment; hoisting it out of the 4**k loop is most of the
        # naive path's win.
        orders = [list(spec.output_qubits) for spec in self.specs]
        order_lsb: List[int] = []
        for order in orders:
            order_lsb = list(order) + order_lsb
        index_map = _output_index_map(order_lsb, num_qubits)
        for assignment in self._wire_cut_assignments():
            vectors = [
                self._effective_distribution(spec, assignment, table, missing, cache)
                for spec in self.specs
            ]
            combined, _ = _combine_subcircuit_vectors(vectors, orders)
            _scatter_into(
                total,
                combined,
                order_lsb,
                coefficient_per_assignment,
                num_qubits,
                index_map=index_map,
            )
        contract_seconds = perf_clock() - contract_start
        self.last_contraction_report = ContractionReport(
            mode="naive",
            kind="probability",
            workers=1,
            num_shards=1,
            plan_seconds=0.0,
            contract_seconds=contract_seconds,
            merge_seconds=0.0,
            shards=(ShardUtilization(shard=0, elements=total.size, seconds=contract_seconds),),
        )
        return total

    def _reconstruct_expectation_naive(
        self,
        observable: PauliObservable,
        table: Mapping[str, VariantResult],
        missing: str,
        cache: Dict[Tuple, float],
    ) -> float:
        """The serial scalar walk over ``4**k * 6**m`` combinations per term."""
        contract_start = perf_clock()
        value = float(
            sum(
                term.coefficient * self._term_value(term, table, missing, cache)
                for term in observable.terms
            )
        )
        contract_seconds = perf_clock() - contract_start
        self.last_contraction_report = ContractionReport(
            mode="naive",
            kind="expectation",
            workers=1,
            num_shards=1,
            plan_seconds=0.0,
            contract_seconds=contract_seconds,
            merge_seconds=0.0,
            shards=(
                ShardUtilization(
                    shard=0, elements=len(observable.terms), seconds=contract_seconds
                ),
            ),
        )
        return value

    # ----------------------------------------------------- planned contraction paths
    def _contraction_workers(self) -> int:
        return getattr(self.engine, "contraction_workers", 1)

    def _probability_structure(self, workers: int) -> Dict[str, object]:
        """Cached plan + index maps + local combination dicts for probability mode."""
        key = ("probability", workers)
        structure = self._contraction_memo.get(key)
        if structure is not None:
            return structure
        plan = plan_contraction(
            self.solution, self.specs, workers=workers, kind="probability"
        )
        wire_cuts = list(self.solution.wire_cuts)
        combos: List[List[Dict[str, str]]] = []
        for axis in plan.axes:
            identifiers = [wire_cuts[p].identifier() for p in axis.wire_positions]
            combos.append(
                [
                    dict(zip(identifiers, bases))
                    for bases in itertools.product(
                        WIRE_CUT_MEASUREMENT_BASES, repeat=len(identifiers)
                    )
                ]
            )
        structure = {
            "plan": plan,
            "index_maps": assignment_index_maps(plan),
            "blocks": output_index_blocks(
                plan,
                [list(spec.output_qubits) for spec in self.specs],
                self.solution.circuit.num_qubits,
            ),
            "combos": combos,
        }
        self._contraction_memo[key] = structure
        return structure

    def _reconstruct_probabilities_planned(
        self,
        table: Mapping[str, VariantResult],
        missing: str,
        cache: Dict[Tuple, np.ndarray],
    ) -> np.ndarray:
        """Planned path: dense per-subcircuit stacks, sharded vectorized kron."""
        plan_start = perf_clock()
        workers = self._contraction_workers()
        structure = self._probability_structure(workers)
        plan = structure["plan"]
        plan_seconds = perf_clock() - plan_start

        contract_start = perf_clock()
        # Stack each subcircuit's effective distributions over its *local*
        # assignments (4**c_S rows, not 4**k): values come from the same
        # memoised _effective_distribution the naive walk uses, so they are
        # bitwise identical; only their packaging changes.
        stacks: List[np.ndarray] = []
        for spec, spec_combos in zip(self.specs, structure["combos"]):
            stacks.append(
                np.stack(
                    [
                        self._effective_distribution(spec, combo, table, missing, cache)
                        for combo in spec_combos
                    ]
                )
            )
        coefficient = 0.5 ** len(self.solution.wire_cuts)
        tasks = []
        for lo, hi in plan.shard_blocks:
            shard_stacks = [
                stack
                if index != plan.shard_axis
                else np.ascontiguousarray(stack[:, lo:hi])
                for index, stack in enumerate(stacks)
            ]
            tasks.append((shard_stacks, structure["index_maps"], coefficient, plan.chunk_rows))
        outputs, fell_back = self.engine.map_shards(contract_probability_shard, tasks)
        contract_seconds = perf_clock() - contract_start

        merge_start = perf_clock()
        total = np.zeros(2**self.solution.circuit.num_qubits)
        utilization = []
        for shard, (indices, (accumulator, seconds)) in enumerate(
            zip(structure["blocks"], outputs)
        ):
            # Disjoint writes: every global index belongs to exactly one shard,
            # so the merge moves bits without any floating-point arithmetic.
            total[indices] = accumulator
            utilization.append(
                ShardUtilization(shard=shard, elements=int(indices.size), seconds=seconds)
            )
        merge_seconds = perf_clock() - merge_start
        self.last_contraction_report = ContractionReport(
            mode="planned",
            kind="probability",
            workers=workers,
            num_shards=plan.num_shards,
            plan_seconds=plan_seconds,
            contract_seconds=contract_seconds,
            merge_seconds=merge_seconds,
            serial_fallback=fell_back,
            shards=tuple(utilization),
            plan=plan,
        )
        return total

    def _expectation_structure(self, workers: int, num_terms: int) -> Dict[str, object]:
        """Cached plan, flat index maps, coefficient vector and combination dicts."""
        key = ("expectation", workers, num_terms)
        structure = self._contraction_memo.get(key)
        if structure is not None:
            return structure
        plan = plan_contraction(
            self.solution,
            self.specs,
            workers=workers,
            kind="expectation",
            num_terms=num_terms,
        )
        gate_cuts = list(self.solution.gate_cuts)
        num_gate_cuts = len(gate_cuts)
        instance_count = 6**num_gate_cuts
        flat = np.arange(instance_count, dtype=np.int64)
        instance_products = np.ones(instance_count)
        gate_ok = True
        for position, cut in enumerate(gate_cuts):
            coefficients = np.asarray(self._gate_cut_instances[cut.op_index])
            if not np.any(coefficients != 0.0):  # qrcclint: disable=float-equality -- exact-zero test on assigned (not computed) coefficient table entries
                # Every global combination has a zero coefficient: the naive
                # walk skips them all and every term value is exactly 0.0.
                gate_ok = False
            digits = (flat // (6 ** (num_gate_cuts - 1 - position))) % 6
            # Multiplied cut-by-cut in solution order — the same association
            # as the naive running product in _gate_cut_instance_maps.
            instance_products = instance_products * coefficients[digits]
        base = 0.5 ** len(self.solution.wire_cuts)
        coefficients_flat = np.tile(
            base * instance_products, 4 ** len(self.solution.wire_cuts)
        )
        wire_cuts = list(self.solution.wire_cuts)
        assignment_combos: List[List[Dict[str, str]]] = []
        instance_combos: List[List[Tuple[Dict[int, int], bool]]] = []
        for axis in plan.axes:
            identifiers = [wire_cuts[p].identifier() for p in axis.wire_positions]
            assignment_combos.append(
                [
                    dict(zip(identifiers, bases))
                    for bases in itertools.product(
                        WIRE_CUT_MEASUREMENT_BASES, repeat=len(identifiers)
                    )
                ]
            )
            op_indices = [gate_cuts[p].op_index for p in axis.gate_positions]
            local: List[Tuple[Dict[int, int], bool]] = []
            for instances in itertools.product(range(1, 7), repeat=len(op_indices)):
                nonzero = all(
                    self._gate_cut_instances[op_index][instance - 1] != 0.0  # qrcclint: disable=float-equality -- exact-zero test on assigned decomposition coefficients, matching the contraction's skip
                    for op_index, instance in zip(op_indices, instances)
                )
                local.append((dict(zip(op_indices, instances)), nonzero))
            instance_combos.append(local)
        structure = {
            "plan": plan,
            "index_maps": flat_index_maps(plan),
            "coefficients": coefficients_flat,
            "assignment_combos": assignment_combos,
            "instance_combos": instance_combos,
            "gate_ok": gate_ok,
        }
        self._contraction_memo[key] = structure
        return structure

    def _term_tables(
        self,
        term: PauliString,
        structure: Dict[str, object],
        table: Mapping[str, VariantResult],
        missing: str,
        cache: Dict[Tuple, float],
    ) -> List[np.ndarray]:
        """Dense per-subcircuit effective-expectation tables for one Pauli term.

        Rows are (local assignment, local instance) in assignment-major order.
        Rows whose local instance combination has a zero coefficient stay
        exactly ``0.0`` — the naive walk never evaluates them either (their
        global coefficient is zero), so skipping the fill keeps the
        ``missing="execute"`` on-demand execution set identical.
        """
        tables: List[np.ndarray] = []
        plan = structure["plan"]
        for spec, axis, assignments, instances in zip(
            self.specs,
            plan.axes,
            structure["assignment_combos"],
            structure["instance_combos"],
        ):
            values = np.zeros(axis.table_rows)
            row = 0
            for assignment in assignments:
                for instance_map, nonzero in instances:
                    if nonzero:
                        values[row] = self._effective_expectation(
                            spec, term, assignment, instance_map, table, missing, cache
                        )
                    row += 1
            tables.append(values)
        return tables

    def _reconstruct_expectation_planned(
        self,
        observable: PauliObservable,
        table: Mapping[str, VariantResult],
        missing: str,
        cache: Dict[Tuple, float],
    ) -> float:
        """Planned path: dense value tables, terms sharded over the pool."""
        plan_start = perf_clock()
        workers = self._contraction_workers()
        structure = self._expectation_structure(workers, len(observable.terms))
        plan = structure["plan"]
        plan_seconds = perf_clock() - plan_start

        contract_start = perf_clock()
        term_values = [0.0] * len(observable.terms)
        jobs: List[Tuple[int, List[np.ndarray], float]] = []
        if structure["gate_ok"]:
            for index, term in enumerate(observable.terms):
                inactive_factor = self._inactive_qubit_factor(term)
                if inactive_factor == 0.0:  # qrcclint: disable=float-equality -- exact-zero short-circuit on assigned coefficients; matches the naive walk bit for bit
                    continue  # the naive walk returns exactly 0.0 for these
                jobs.append(
                    (
                        index,
                        self._term_tables(term, structure, table, missing, cache),
                        inactive_factor,
                    )
                )
        fell_back = False
        utilization = []
        if jobs:
            blocks = balanced_blocks(len(jobs), min(plan.num_shards, len(jobs)))
            tasks = [
                (
                    structure["index_maps"],
                    structure["coefficients"],
                    [(tables, factor) for _, tables, factor in jobs[lo:hi]],
                )
                for lo, hi in blocks
            ]
            outputs, fell_back = self.engine.map_shards(contract_expectation_terms, tasks)
            for shard, ((lo, hi), (values, seconds)) in enumerate(zip(blocks, outputs)):
                for (index, _, _), value in zip(jobs[lo:hi], values):
                    term_values[index] = value
                utilization.append(
                    ShardUtilization(shard=shard, elements=hi - lo, seconds=seconds)
                )
        contract_seconds = perf_clock() - contract_start

        merge_start = perf_clock()
        # Same final reduction as the naive path: term contributions summed in
        # observable term order, regardless of which shard computed them.
        value = float(
            sum(
                term.coefficient * term_value
                for term, term_value in zip(observable.terms, term_values)
            )
        )
        merge_seconds = perf_clock() - merge_start
        self.last_contraction_report = ContractionReport(
            mode="planned",
            kind="expectation",
            workers=workers,
            num_shards=max(1, len(utilization)),
            plan_seconds=plan_seconds,
            contract_seconds=contract_seconds,
            merge_seconds=merge_seconds,
            serial_fallback=fell_back,
            shards=tuple(utilization),
            plan=plan,
        )
        return value

    # ------------------------------------------------------------------ enumeration
    def _wire_cut_assignments(self) -> Iterator[Dict[str, str]]:
        """Every global measurement-basis assignment, in a deterministic order."""
        cuts = list(self.solution.wire_cuts)
        for bases in itertools.product(WIRE_CUT_MEASUREMENT_BASES, repeat=len(cuts)):
            yield {cut.identifier(): basis for cut, basis in zip(cuts, bases)}

    def _gate_cut_instance_maps(self) -> Iterator[Tuple[Dict[int, int], float]]:
        """Every gate-cut instance combination with its coefficient product."""
        gate_cuts = list(self.solution.gate_cuts)
        iterator = (
            itertools.product(range(1, 7), repeat=len(gate_cuts)) if gate_cuts else [()]
        )
        for instances in iterator:
            coefficient = 1.0
            for cut, instance in zip(gate_cuts, instances):
                coefficient *= self._gate_cut_instances[cut.op_index][instance - 1]
            yield (
                {cut.op_index: instance for cut, instance in zip(gate_cuts, instances)},
                coefficient,
            )

    def _enumerate_term(
        self,
        term: PauliString,
        batch: List[SubcircuitVariant],
        scheduled: set,
        weights_out: Optional[Dict[str, float]] = None,
    ) -> None:
        """Collect every variant :meth:`_term_value` may need for one Pauli term."""
        if self._inactive_qubit_factor(term) == 0.0:  # qrcclint: disable=float-equality -- exact-zero short-circuit on assigned coefficients; matches the naive walk bit for bit
            return
        base = 0.5 ** len(self.solution.wire_cuts)
        for assignment in self._wire_cut_assignments():
            for instance_map, instance_coefficient in self._gate_cut_instance_maps():
                if instance_coefficient == 0.0:  # qrcclint: disable=float-equality -- exact-zero short-circuit on assigned coefficients; matches the naive walk bit for bit
                    continue
                for spec in self.specs:
                    key, plan = self._expectation_plan(spec, term, assignment, instance_map)
                    if weights_out is not None:
                        coefficient = term.coefficient * base * instance_coefficient
                        for weight, variant in plan:
                            fingerprint = request_key(variant)
                            weights_out[fingerprint] = weights_out.get(
                                fingerprint, 0.0
                            ) + abs(coefficient * weight)
                    if key not in scheduled:
                        scheduled.add(key)
                        batch.extend(variant for _, variant in plan)

    # ------------------------------------------------------------------ plans
    def _builder(self, spec: SubcircuitSpec) -> VariantBuilder:
        return self._builders[spec.index]

    def _built_variant(
        self,
        spec: SubcircuitSpec,
        settings: VariantSettings,
        mode: str,
        term: Optional[PauliString],
    ) -> SubcircuitVariant:
        """Build (or reuse) the concrete circuit for one setting combination."""
        memo_key = (spec.index, settings, mode, term.paulis if term is not None else None)
        variant = self._variant_memo.get(memo_key)
        if variant is None:
            variant = self._builder(spec).build(settings, mode, term)
            self._variant_memo[memo_key] = variant
        return variant

    def _restricted_assignment(
        self, spec: SubcircuitSpec, assignment: Mapping[str, str]
    ) -> Tuple[Dict[str, str], Dict[str, str]]:
        upstream = {cut.identifier(): assignment[cut.identifier()] for cut in spec.upstream_cuts}
        downstream_basis = {
            cut.identifier(): assignment[cut.identifier()] for cut in spec.downstream_cuts
        }
        return upstream, downstream_basis

    def _downstream_choices(
        self, downstream_basis: Mapping[str, str], identifiers: Sequence[str]
    ) -> Iterator[Tuple[Dict[str, str], float]]:
        """Init-label choices for the downstream cut ends, with their weights."""
        iterator = (
            itertools.product(
                *[INIT_STATE_DECOMPOSITION[downstream_basis[i]] for i in identifiers]
            )
            if identifiers
            else [()]
        )
        for choice in iterator:
            labels = {i: label for i, (label, _) in zip(identifiers, choice)}
            weight = 1.0
            for _, coefficient in choice:
                weight *= coefficient
            yield labels, weight

    def _distribution_plan(
        self, spec: SubcircuitSpec, assignment: Mapping[str, str]
    ) -> Tuple[Tuple, Plan]:
        """Weighted variants forming one subcircuit's effective distribution."""
        upstream, downstream_basis = self._restricted_assignment(spec, assignment)
        cache_key = (
            spec.index,
            tuple(sorted(upstream.items())),
            tuple(sorted(downstream_basis.items())),
        )
        plan = self._distribution_plans.get(cache_key)
        if plan is None:
            identifiers = [cut.identifier() for cut in spec.downstream_cuts]
            plan = []
            for labels, weight in self._downstream_choices(downstream_basis, identifiers):
                settings = VariantSettings.build(upstream, labels, {})
                plan.append((weight, self._built_variant(spec, settings, "probability", None)))
            self._distribution_plans[cache_key] = plan
        return cache_key, plan

    def _expectation_plan(
        self,
        spec: SubcircuitSpec,
        term: PauliString,
        assignment: Mapping[str, str],
        instance_map: Mapping[int, int],
    ) -> Tuple[Tuple, Plan]:
        """Weighted variants forming one subcircuit's effective expectation."""
        upstream, downstream_basis = self._restricted_assignment(spec, assignment)
        local_instances = {
            op_index: instance_map[op_index] for op_index in spec.gate_cut_sides
        }
        restricted_term = term.restricted_to(spec.output_qubits)
        cache_key = (
            spec.index,
            tuple(sorted(upstream.items())),
            tuple(sorted(downstream_basis.items())),
            tuple(sorted(local_instances.items())),
            restricted_term.paulis,
        )
        plan = self._expectation_plans.get(cache_key)
        if plan is None:
            identifiers = [cut.identifier() for cut in spec.downstream_cuts]
            plan = []
            for labels, weight in self._downstream_choices(downstream_basis, identifiers):
                settings = VariantSettings.build(upstream, labels, local_instances)
                plan.append(
                    (
                        weight,
                        self._built_variant(spec, settings, "expectation", restricted_term),
                    )
                )
            self._expectation_plans[cache_key] = plan
        return cache_key, plan

    # ------------------------------------------------------------------ contraction
    def _result_for(
        self,
        variant: SubcircuitVariant,
        table: Mapping[str, VariantResult],
        missing: str = "execute",
    ) -> Optional[VariantResult]:
        result = table.get(request_key(variant))
        if result is None:
            if missing == "skip":
                # Truncated contraction: the variant was pruned out; its
                # contribution is exactly zero (the bias this introduces is
                # bounded a priori by PruningReport.bias_bound).
                return None
            if missing == "error":
                raise ReconstructionError(
                    f"results table is missing variant {request_key(variant)[:12]}... "
                    f"for subcircuit {variant.subcircuit_index} (missing='error')"
                )
            # Defensive: a variant that escaped enumeration is executed on demand
            # through the same engine path (counted, cached), keeping phase two
            # total even for subclasses with exotic contraction orders.
            result = self.engine.lookup(variant)
        return result

    def _effective_distribution(
        self,
        spec: SubcircuitSpec,
        assignment: Mapping[str, str],
        table: Mapping[str, VariantResult],
        missing: str = "execute",
        cache: Optional[Dict[Tuple, np.ndarray]] = None,
    ) -> np.ndarray:
        """Downstream-decomposition-weighted quasi-distribution for one subcircuit."""
        cache_key, plan = self._distribution_plan(spec, assignment)
        if cache is None:
            cache = {}
        cached = cache.get(cache_key)
        if cached is not None:
            return cached
        total = np.zeros(2 ** len(spec.output_qubits))
        for weight, variant in plan:
            result = self._result_for(variant, table, missing)
            if result is None:
                continue
            if result.distribution is None:
                raise ReconstructionError(
                    f"executor returned no distribution for subcircuit {spec.index}"
                )
            total = total + weight * result.distribution
        cache[cache_key] = total
        return total

    def _term_value(
        self,
        term: PauliString,
        table: Mapping[str, VariantResult],
        missing: str = "execute",
        cache: Optional[Dict[Tuple, float]] = None,
    ) -> float:
        inactive_factor = self._inactive_qubit_factor(term)
        if inactive_factor == 0.0:  # qrcclint: disable=float-equality -- exact-zero short-circuit on assigned coefficients; matches the naive walk bit for bit
            return 0.0
        value = 0.0
        base_coefficient = 0.5 ** len(self.solution.wire_cuts)
        for assignment in self._wire_cut_assignments():
            for instance_map, instance_coefficient in self._gate_cut_instance_maps():
                coefficient = base_coefficient * instance_coefficient
                if coefficient == 0.0:  # qrcclint: disable=float-equality -- exact-zero short-circuit on assigned coefficients; matches the naive walk bit for bit
                    continue
                product = 1.0
                for spec in self.specs:
                    product *= self._effective_expectation(
                        spec, term, assignment, instance_map, table, missing, cache
                    )
                    if product == 0.0:  # qrcclint: disable=float-equality -- exact-zero short-circuit on a product of assigned coefficients
                        break
                value += coefficient * product
        return value * inactive_factor

    def _effective_expectation(
        self,
        spec: SubcircuitSpec,
        term: PauliString,
        assignment: Mapping[str, str],
        instance_map: Mapping[int, int],
        table: Mapping[str, VariantResult],
        missing: str = "execute",
        cache: Optional[Dict[Tuple, float]] = None,
    ) -> float:
        cache_key, plan = self._expectation_plan(spec, term, assignment, instance_map)
        if cache is None:
            cache = {}
        cached = cache.get(cache_key)
        if cached is not None:
            return cached
        total = 0.0
        for weight, variant in plan:
            result = self._result_for(variant, table, missing)
            if result is None:
                continue
            if result.value is None:
                raise ReconstructionError(
                    f"executor returned no expectation value for subcircuit {spec.index}"
                )
            total += weight * result.value
        cache[cache_key] = total
        return total

    def _inactive_qubit_factor(self, term: PauliString) -> float:
        """Pauli factors on qubits no subcircuit outputs (idle qubits stay in |0>)."""
        covered = set()
        for spec in self.specs:
            covered.update(spec.output_qubits)
        factor = 1.0
        for qubit, label in term.paulis:
            if qubit in covered:
                continue
            if label == "Z":
                continue
            return 0.0
        return factor


def _combine_subcircuit_vectors(
    vectors: Sequence[np.ndarray], orders: Sequence[Sequence[int]]
) -> Tuple[np.ndarray, List[int]]:
    """Kronecker-combine per-subcircuit vectors; return (vector, LSB-first qubit list).

    Built as a left-to-right chain of outer products (``np.multiply.outer`` +
    ravel): the same pairwise multiplications ``np.kron`` performs, in the same
    association, without kron's reshape overhead — bit-identical output.
    """
    if not vectors:
        return np.array([1.0]), []
    combined = np.asarray(vectors[0])
    order_lsb: List[int] = list(orders[0])
    for vector, order in zip(vectors[1:], orders[1:]):
        combined = np.multiply.outer(combined, np.asarray(vector)).reshape(-1)
        order_lsb = list(order) + order_lsb
    return combined, order_lsb


def _output_index_map(order_lsb: Sequence[int], num_qubits: int) -> np.ndarray:
    """Global basis index for every element of a combined vector.

    ``order_lsb[position]`` is the circuit qubit carried by bit ``position``
    (LSB first) of the combined vector's flat index.  The map is a bijection
    onto the output-qubit subspace — duplicate qubits would make the fancy
    in-place ``+=`` in :func:`_scatter_into` silently drop contributions, so
    they are rejected here.
    """
    if len(set(order_lsb)) != len(order_lsb):
        raise ReconstructionError(f"duplicate output qubits in {list(order_lsb)}")
    indices = np.arange(2 ** len(order_lsb))
    global_indices = np.zeros_like(indices)
    for position, qubit in enumerate(order_lsb):
        if qubit >= num_qubits:
            raise ReconstructionError(f"output qubit {qubit} outside circuit")
        global_indices |= ((indices >> position) & 1) << qubit
    return global_indices


def _scatter_into(
    total: np.ndarray,
    combined: np.ndarray,
    order_lsb: Sequence[int],
    coefficient: float,
    num_qubits: int,
    index_map: Optional[np.ndarray] = None,
) -> None:
    """Scatter a combined vector into the global basis ordering of ``num_qubits``.

    ``index_map`` (from :func:`_output_index_map`) can be precomputed once and
    reused across the ``4**k`` assignments — the map only depends on the qubit
    order.  The indices are unique (enforced by ``_output_index_map``), so the
    scatter is a plain fancy-indexed ``+=`` rather than the much slower
    ``np.add.at``; element for element the additions are identical.
    """
    # Exact integer width check — float log2 can misround for wide vectors.
    if len(combined) != 2 ** len(order_lsb):
        raise ReconstructionError("qubit order does not match combined vector size")
    if index_map is None:
        index_map = _output_index_map(order_lsb, num_qubits)
    total[index_map] += coefficient * combined
