"""Classical post-processing: recombining subcircuit results into the original result.

Two reconstruction modes mirror Section 4.3 of the paper:

* **probability vectors** (wire cuts only): for every assignment of a Pauli basis to
  every cut, the upstream subcircuit contributes a sign-weighted distribution and the
  downstream subcircuit contributes an eigenstate-decomposition-weighted
  distribution; the Kronecker product of the per-subcircuit vectors, summed over all
  ``4^k`` assignments with a ``1/2`` factor per cut, is the original distribution
  (Eq. 3),
* **expectation values** (wire + gate cuts): the same contraction evaluated per
  Pauli term of the observable, with every gate cut additionally summed over its six
  Mitarai–Fujii instances weighted by the instance coefficients (Eq. 4 / 19).

The contraction enumerates every subcircuit's *local* setting combinations once and
caches them, then sums coefficient-weighted products over the global assignments, so
the exponential cost is ``4^k * 6^m`` scalar work plus
``prod_S 4^(cuts touching S) * 6^(gate cuts touching S)`` subcircuit evaluations.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ReconstructionError
from ..utils.pauli import PauliObservable, PauliString
from .cuts import CutSolution
from .executors import ExactExecutor, VariantExecutor
from .fragments import SubcircuitSpec, extract_subcircuits
from .gate_cut import decompose_gate_cut
from .variants import (
    WIRE_CUT_MEASUREMENT_BASES,
    VariantBuilder,
    VariantSettings,
)

__all__ = ["INIT_STATE_DECOMPOSITION", "CutReconstructor"]

#: Decomposition of each measurement-basis operator into initialisation eigenstates:
#: ``P = sum_s coefficient(s) |s><s|`` (the downstream half of Eq. 3).
INIT_STATE_DECOMPOSITION: Dict[str, Tuple[Tuple[str, float], ...]] = {
    "I": (("zero", 1.0), ("one", 1.0)),
    "Z": (("zero", 1.0), ("one", -1.0)),
    "X": (("plus", 2.0), ("zero", -1.0), ("one", -1.0)),
    "Y": (("plus_i", 2.0), ("zero", -1.0), ("one", -1.0)),
}


class CutReconstructor:
    """Reconstructs the original circuit's output from a cut solution."""

    def __init__(
        self,
        solution: CutSolution,
        specs: Optional[Sequence[SubcircuitSpec]] = None,
        executor: Optional[VariantExecutor] = None,
        enable_reuse: bool = True,
    ) -> None:
        self.solution = solution
        self.specs: List[SubcircuitSpec] = list(
            specs if specs is not None else extract_subcircuits(solution, enable_reuse)
        )
        self.executor = executor or ExactExecutor()
        self._builders: Dict[int, VariantBuilder] = {
            spec.index: VariantBuilder(solution, spec) for spec in self.specs
        }
        self._gate_cut_instances: Dict[int, Tuple[float, ...]] = {}
        for cut in solution.gate_cuts:
            decomposition = decompose_gate_cut(solution.circuit.operations[cut.op_index])
            self._gate_cut_instances[cut.op_index] = tuple(
                instance.coefficient for instance in decomposition.instances
            )
        self._probability_cache: Dict[Tuple, np.ndarray] = {}
        self._expectation_cache: Dict[Tuple, float] = {}

    # ------------------------------------------------------------------ public API
    @property
    def num_variant_evaluations(self) -> int:
        """Subcircuit circuit executions performed so far (for overhead reporting)."""
        return self.executor.executions

    def reconstruct_probabilities(self) -> np.ndarray:
        """Full probability vector of the original circuit (wire cuts only)."""
        if self.solution.gate_cuts:
            raise ReconstructionError(
                "probability vectors cannot be reconstructed after gate cutting; "
                "gate cuts only support expectation values (Section 2.3.2)"
            )
        cuts = list(self.solution.wire_cuts)
        num_qubits = self.solution.circuit.num_qubits
        total = np.zeros(2**num_qubits)
        coefficient_per_assignment = 0.5 ** len(cuts)
        for bases in itertools.product(WIRE_CUT_MEASUREMENT_BASES, repeat=len(cuts)):
            assignment = {cut.identifier(): basis for cut, basis in zip(cuts, bases)}
            vectors, orders = [], []
            for spec in self.specs:
                vectors.append(self._effective_distribution(spec, assignment))
                orders.append(list(spec.output_qubits))
            combined, order_lsb = _combine_subcircuit_vectors(vectors, orders)
            _scatter_into(total, combined, order_lsb, coefficient_per_assignment, num_qubits)
        return total

    def reconstruct_expectation(self, observable: PauliObservable) -> float:
        """Expectation value of ``observable`` on the original circuit's output."""
        return float(
            sum(term.coefficient * self._term_value(term) for term in observable.terms)
        )

    # ------------------------------------------------------------------ internals
    def _builder(self, spec: SubcircuitSpec) -> VariantBuilder:
        return self._builders[spec.index]

    def _restricted_assignment(
        self, spec: SubcircuitSpec, assignment: Mapping[str, str]
    ) -> Tuple[Dict[str, str], Dict[str, str]]:
        upstream = {cut.identifier(): assignment[cut.identifier()] for cut in spec.upstream_cuts}
        downstream_basis = {
            cut.identifier(): assignment[cut.identifier()] for cut in spec.downstream_cuts
        }
        return upstream, downstream_basis

    def _effective_distribution(
        self, spec: SubcircuitSpec, assignment: Mapping[str, str]
    ) -> np.ndarray:
        """Downstream-decomposition-weighted quasi-distribution for one subcircuit."""
        upstream, downstream_basis = self._restricted_assignment(spec, assignment)
        cache_key = (
            spec.index,
            tuple(sorted(upstream.items())),
            tuple(sorted(downstream_basis.items())),
        )
        cached = self._probability_cache.get(cache_key)
        if cached is not None:
            return cached

        builder = self._builder(spec)
        identifiers = [cut.identifier() for cut in spec.downstream_cuts]
        total = np.zeros(2 ** len(spec.output_qubits))
        for choice in itertools.product(
            *[INIT_STATE_DECOMPOSITION[downstream_basis[i]] for i in identifiers]
        ) if identifiers else [()]:
            labels = {i: label for i, (label, _) in zip(identifiers, choice)}
            weight = 1.0
            for _, coefficient in choice:
                weight *= coefficient
            settings = VariantSettings.build(upstream, labels, {})
            variant = builder.build(settings, "probability")
            total = total + weight * self.executor.quasi_distribution(variant)
        self._probability_cache[cache_key] = total
        return total

    def _term_value(self, term: PauliString) -> float:
        inactive_factor = self._inactive_qubit_factor(term)
        if inactive_factor == 0.0:
            return 0.0
        wire_cuts = list(self.solution.wire_cuts)
        gate_cuts = list(self.solution.gate_cuts)
        value = 0.0
        base_coefficient = 0.5 ** len(wire_cuts)
        for bases in itertools.product(WIRE_CUT_MEASUREMENT_BASES, repeat=len(wire_cuts)):
            assignment = {cut.identifier(): basis for cut, basis in zip(wire_cuts, bases)}
            for instances in itertools.product(
                range(1, 7), repeat=len(gate_cuts)
            ) if gate_cuts else [()]:
                instance_map = {
                    cut.op_index: instance for cut, instance in zip(gate_cuts, instances)
                }
                coefficient = base_coefficient
                for cut, instance in zip(gate_cuts, instances):
                    coefficient *= self._gate_cut_instances[cut.op_index][instance - 1]
                if coefficient == 0.0:
                    continue
                product = 1.0
                for spec in self.specs:
                    product *= self._effective_expectation(spec, term, assignment, instance_map)
                    if product == 0.0:
                        break
                value += coefficient * product
        return value * inactive_factor

    def _effective_expectation(
        self,
        spec: SubcircuitSpec,
        term: PauliString,
        assignment: Mapping[str, str],
        instance_map: Mapping[int, int],
    ) -> float:
        upstream, downstream_basis = self._restricted_assignment(spec, assignment)
        local_instances = {
            op_index: instance_map[op_index] for op_index in spec.gate_cut_sides
        }
        restricted_term = term.restricted_to(spec.output_qubits)
        cache_key = (
            spec.index,
            tuple(sorted(upstream.items())),
            tuple(sorted(downstream_basis.items())),
            tuple(sorted(local_instances.items())),
            restricted_term.paulis,
        )
        cached = self._expectation_cache.get(cache_key)
        if cached is not None:
            return cached

        builder = self._builder(spec)
        identifiers = [cut.identifier() for cut in spec.downstream_cuts]
        total = 0.0
        for choice in itertools.product(
            *[INIT_STATE_DECOMPOSITION[downstream_basis[i]] for i in identifiers]
        ) if identifiers else [()]:
            labels = {i: label for i, (label, _) in zip(identifiers, choice)}
            weight = 1.0
            for _, coefficient in choice:
                weight *= coefficient
            settings = VariantSettings.build(upstream, labels, local_instances)
            variant = builder.build(settings, "expectation", restricted_term)
            total += weight * self.executor.expectation_value(variant)
        self._expectation_cache[cache_key] = total
        return total

    def _inactive_qubit_factor(self, term: PauliString) -> float:
        """Pauli factors on qubits no subcircuit outputs (idle qubits stay in |0>)."""
        covered = set()
        for spec in self.specs:
            covered.update(spec.output_qubits)
        factor = 1.0
        for qubit, label in term.paulis:
            if qubit in covered:
                continue
            if label == "Z":
                continue
            return 0.0
        return factor


def _combine_subcircuit_vectors(
    vectors: Sequence[np.ndarray], orders: Sequence[Sequence[int]]
) -> Tuple[np.ndarray, List[int]]:
    """Kronecker-combine per-subcircuit vectors; return (vector, LSB-first qubit list)."""
    combined = np.array([1.0])
    order_lsb: List[int] = []
    for vector, order in zip(vectors, orders):
        combined = np.kron(combined, vector)
        order_lsb = list(order) + order_lsb
    return combined, order_lsb


def _scatter_into(
    total: np.ndarray,
    combined: np.ndarray,
    order_lsb: Sequence[int],
    coefficient: float,
    num_qubits: int,
) -> None:
    """Scatter a combined vector into the global basis ordering of ``num_qubits``."""
    if len(order_lsb) != int(np.log2(len(combined))):
        raise ReconstructionError("qubit order does not match combined vector size")
    indices = np.arange(len(combined))
    global_indices = np.zeros_like(indices)
    for position, qubit in enumerate(order_lsb):
        if qubit >= num_qubits:
            raise ReconstructionError(f"output qubit {qubit} outside circuit")
        global_indices |= ((indices >> position) & 1) << qubit
    np.add.at(total, global_indices, coefficient * combined)
