"""Classical post-processing: recombining subcircuit results into the original result.

Two reconstruction modes mirror Section 4.3 of the paper:

* **probability vectors** (wire cuts only): for every assignment of a Pauli basis to
  every cut, the upstream subcircuit contributes a sign-weighted distribution and the
  downstream subcircuit contributes an eigenstate-decomposition-weighted
  distribution; the Kronecker product of the per-subcircuit vectors, summed over all
  ``4^k`` assignments with a ``1/2`` factor per cut, is the original distribution
  (Eq. 3),
* **expectation values** (wire + gate cuts): the same contraction evaluated per
  Pauli term of the observable, with every gate cut additionally summed over its six
  Mitarai–Fujii instances weighted by the instance coefficients (Eq. 4 / 19).

Reconstruction is **two-phase**.  Phase one *enumerates*: the contraction loops are
walked once without executing anything, collecting every ``(subcircuit, settings,
pauli_term)`` variant the contraction will need into one batch (per-subcircuit
*plans* — weighted variant lists — are memoised along the way).  The batch goes to
the execution engine (:mod:`repro.engine`), which dedups it by fingerprint,
satisfies repeats from the shared cache and runs the unique requests, serially or
across a worker pool.  Phase two *contracts*: the same loops are walked again,
reading every subcircuit value from the results table — no executor calls happen
inside the contraction.  The exponential cost is ``4^k * 6^m`` scalar work plus
``prod_S 4^(cuts touching S) * 6^(gate cuts touching S)`` subcircuit evaluations,
and the evaluations are now batchable and parallelisable.

Between the two phases an optional *pruning* pass (:mod:`repro.engine.pruning`)
may drop small-|contraction-weight| requests; phase two then contracts over the
resulting *partial* table with ``missing="skip"`` — an absent variant contributes
exactly zero, and the induced bias is bounded a priori by the pruning report.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..engine import ParallelEngine, VariantResult, request_key
from ..exceptions import ReconstructionError
from ..utils.pauli import PauliObservable, PauliString
from .cuts import CutSolution
from .executors import VariantExecutor
from .fragments import SubcircuitSpec, extract_subcircuits
from .gate_cut import decompose_gate_cut
from .variants import (
    WIRE_CUT_MEASUREMENT_BASES,
    SubcircuitVariant,
    VariantBuilder,
    VariantSettings,
)

__all__ = ["INIT_STATE_DECOMPOSITION", "CutReconstructor"]

#: Decomposition of each measurement-basis operator into initialisation eigenstates:
#: ``P = sum_s coefficient(s) |s><s|`` (the downstream half of Eq. 3).
INIT_STATE_DECOMPOSITION: Dict[str, Tuple[Tuple[str, float], ...]] = {
    "I": (("zero", 1.0), ("one", 1.0)),
    "Z": (("zero", 1.0), ("one", -1.0)),
    "X": (("plus", 2.0), ("zero", -1.0), ("one", -1.0)),
    "Y": (("plus_i", 2.0), ("zero", -1.0), ("one", -1.0)),
}

#: A plan: the weighted variants whose results combine into one effective
#: subcircuit value (the downstream-decomposition sum of Eq. 3).
Plan = List[Tuple[float, SubcircuitVariant]]


class CutReconstructor:
    """Reconstructs the original circuit's output from a cut solution.

    Execution is delegated to an engine: pass ``engine`` to control batching and
    parallelism, or ``executor`` to keep the legacy single-backend interface (a
    serial engine is wrapped around it).

    Args:
        solution: the cut solution to reconstruct from.
        specs: pre-extracted subcircuit specs; extracted from ``solution``
            (honouring ``enable_reuse``) when omitted.
        executor: a single :class:`~repro.cutting.executors.VariantExecutor`
            backend; mutually exclusive with ``engine``.
        enable_reuse: apply the qubit-reuse pass when this constructor extracts
            the subcircuits itself (ignored when ``specs`` is given).
        engine: a :class:`~repro.engine.ParallelEngine` to execute variant
            batches through (shared caches, worker pools).

    Example::

        reconstructor = CutReconstructor(plan.solution, specs=plan.subcircuits)
        value = reconstructor.reconstruct_expectation(observable)
    """

    def __init__(
        self,
        solution: CutSolution,
        specs: Optional[Sequence[SubcircuitSpec]] = None,
        executor: Optional[VariantExecutor] = None,
        enable_reuse: bool = True,
        engine: Optional[ParallelEngine] = None,
    ) -> None:
        self.solution = solution
        self.specs: List[SubcircuitSpec] = list(
            specs if specs is not None else extract_subcircuits(solution, enable_reuse)
        )
        if engine is None:
            # executor=None lets the engine build its configured default exact
            # backend (the vectorized batched executor, unless EngineConfig
            # says otherwise).
            engine = ParallelEngine(executor)
        elif executor is not None and engine.executor is not executor:
            raise ReconstructionError(
                "pass either an executor or an engine, not two different backends"
            )
        self.engine = engine
        self.executor = engine.executor
        self._builders: Dict[int, VariantBuilder] = {
            spec.index: VariantBuilder(solution, spec) for spec in self.specs
        }
        self._gate_cut_instances: Dict[int, Tuple[float, ...]] = {}
        for cut in solution.gate_cuts:
            decomposition = decompose_gate_cut(solution.circuit.operations[cut.op_index])
            self._gate_cut_instances[cut.op_index] = tuple(
                instance.coefficient for instance in decomposition.instances
            )
        self._variant_memo: Dict[Tuple, SubcircuitVariant] = {}
        self._distribution_plans: Dict[Tuple, Plan] = {}
        self._expectation_plans: Dict[Tuple, Plan] = {}

    # ------------------------------------------------------------------ public API
    @property
    def num_variant_evaluations(self) -> int:
        """Unique subcircuit circuit executions performed so far (dedup-aware)."""
        return self.engine.executions

    def enumerate_probability_requests(
        self, weights_out: Optional[Dict[str, float]] = None
    ) -> List[SubcircuitVariant]:
        """Phase one of probability reconstruction: every variant the contraction needs.

        The returned batch may contain duplicates across plans; the engine dedups
        by fingerprint.  Benchmarks use this to drive :meth:`ParallelEngine.run_batch`
        directly.  ``weights_out``, when given, accumulates each fingerprint's
        |contraction weight| during the same walk (for shot allocation), so no
        second pass over the exponential loop is needed.
        """
        if self.solution.gate_cuts:
            raise ReconstructionError(
                "probability vectors cannot be reconstructed after gate cutting; "
                "gate cuts only support expectation values (Section 2.3.2)"
            )
        batch: List[SubcircuitVariant] = []
        scheduled: set = set()
        base = 0.5 ** len(self.solution.wire_cuts)
        for assignment in self._wire_cut_assignments():
            for spec in self.specs:
                key, plan = self._distribution_plan(spec, assignment)
                if weights_out is not None:
                    for weight, variant in plan:
                        fingerprint = request_key(variant)
                        weights_out[fingerprint] = weights_out.get(fingerprint, 0.0) + abs(
                            base * weight
                        )
                if key not in scheduled:
                    scheduled.add(key)
                    batch.extend(variant for _, variant in plan)
        return batch

    def enumerate_expectation_requests(
        self,
        observable: PauliObservable,
        weights_out: Optional[Dict[str, float]] = None,
    ) -> List[SubcircuitVariant]:
        """Phase one of expectation reconstruction for every term of ``observable``.

        ``weights_out``, when given, accumulates each fingerprint's |contraction
        weight| during the same walk (see :meth:`enumerate_probability_requests`).
        """
        batch: List[SubcircuitVariant] = []
        scheduled: set = set()
        for term in observable.terms:
            self._enumerate_term(term, batch, scheduled, weights_out)
        return batch

    def probability_request_weights(self) -> Dict[str, float]:
        """Accumulated |contraction weight| per fingerprint for probability mode.

        A variant requested from several contraction terms accumulates the
        magnitudes of all of them, so the weights are a proxy for how strongly
        each variant's statistical error propagates into the reconstructed
        distribution — the ``"weighted"``/``"variance"`` shot-allocation
        policies split the budget proportionally to these.  Callers that also
        need the batch should pass ``weights_out`` to
        :meth:`enumerate_probability_requests` instead of walking twice.
        """
        weights: Dict[str, float] = {}
        self.enumerate_probability_requests(weights_out=weights)
        return weights

    def expectation_request_weights(self, observable: PauliObservable) -> Dict[str, float]:
        """Accumulated |contraction weight| per fingerprint for expectation mode.

        See :meth:`probability_request_weights`; callers that also need the
        batch should pass ``weights_out`` to
        :meth:`enumerate_expectation_requests` instead of walking twice.
        """
        weights: Dict[str, float] = {}
        self.enumerate_expectation_requests(observable, weights_out=weights)
        return weights

    def reconstruct_probabilities(
        self,
        table: Optional[Mapping[str, VariantResult]] = None,
        missing: str = "execute",
    ) -> np.ndarray:
        """Full probability vector of the original circuit (wire cuts only).

        Args:
            table: results for the enumerated batch, for callers who already
                executed it (e.g. to apply a shot allocation first); by default
                the batch is enumerated and executed here.
            missing: what to do when the contraction needs a variant absent
                from ``table`` — ``"execute"`` (default) runs it on demand
                through the engine, ``"skip"`` treats its contribution as
                exactly zero (truncated contraction over a *pruned* batch, see
                :mod:`repro.engine.pruning`), ``"error"`` raises
                :class:`~repro.exceptions.ReconstructionError`.

        Returns:
            The reconstructed quasi-probability vector over all
            ``2**num_qubits`` basis states (exact probabilities for exact
            executors; a statistical/truncated estimate otherwise).
        """
        self._check_missing_mode(missing)
        if table is None:
            table = self.engine.run_batch(self.enumerate_probability_requests())
        # Effective-value memos are per call: successive calls may pass tables
        # with different values (different seeds, allocations or prunings), so
        # reusing memos across calls would silently return stale results.
        cache: Dict[Tuple, np.ndarray] = {}
        num_qubits = self.solution.circuit.num_qubits
        total = np.zeros(2**num_qubits)
        coefficient_per_assignment = 0.5 ** len(self.solution.wire_cuts)
        for assignment in self._wire_cut_assignments():
            vectors, orders = [], []
            for spec in self.specs:
                vectors.append(
                    self._effective_distribution(spec, assignment, table, missing, cache)
                )
                orders.append(list(spec.output_qubits))
            combined, order_lsb = _combine_subcircuit_vectors(vectors, orders)
            _scatter_into(total, combined, order_lsb, coefficient_per_assignment, num_qubits)
        return total

    def reconstruct_expectation(
        self,
        observable: PauliObservable,
        table: Optional[Mapping[str, VariantResult]] = None,
        missing: str = "execute",
    ) -> float:
        """Expectation value of ``observable`` on the original circuit's output.

        Args:
            observable: the Pauli observable to reconstruct.
            table: results for the enumerated batch, for callers who already
                executed it (e.g. to apply a shot allocation first).
            missing: what to do when the contraction needs a variant absent
                from ``table`` — ``"execute"`` (default) runs it on demand,
                ``"skip"`` contributes exactly zero (truncated contraction over
                a pruned batch), ``"error"`` raises.

        Returns:
            The reconstructed expectation value (a float).
        """
        self._check_missing_mode(missing)
        if table is None:
            table = self.engine.run_batch(self.enumerate_expectation_requests(observable))
        # Per-call memos, for the same staleness reason as reconstruct_probabilities.
        cache: Dict[Tuple, float] = {}
        return float(
            sum(
                term.coefficient * self._term_value(term, table, missing, cache)
                for term in observable.terms
            )
        )

    @staticmethod
    def _check_missing_mode(missing: str) -> None:
        if missing not in ("execute", "skip", "error"):
            raise ReconstructionError(
                f"missing must be 'execute', 'skip' or 'error', got {missing!r}"
            )

    # ------------------------------------------------------------------ enumeration
    def _wire_cut_assignments(self) -> Iterator[Dict[str, str]]:
        """Every global measurement-basis assignment, in a deterministic order."""
        cuts = list(self.solution.wire_cuts)
        for bases in itertools.product(WIRE_CUT_MEASUREMENT_BASES, repeat=len(cuts)):
            yield {cut.identifier(): basis for cut, basis in zip(cuts, bases)}

    def _gate_cut_instance_maps(self) -> Iterator[Tuple[Dict[int, int], float]]:
        """Every gate-cut instance combination with its coefficient product."""
        gate_cuts = list(self.solution.gate_cuts)
        iterator = (
            itertools.product(range(1, 7), repeat=len(gate_cuts)) if gate_cuts else [()]
        )
        for instances in iterator:
            coefficient = 1.0
            for cut, instance in zip(gate_cuts, instances):
                coefficient *= self._gate_cut_instances[cut.op_index][instance - 1]
            yield (
                {cut.op_index: instance for cut, instance in zip(gate_cuts, instances)},
                coefficient,
            )

    def _enumerate_term(
        self,
        term: PauliString,
        batch: List[SubcircuitVariant],
        scheduled: set,
        weights_out: Optional[Dict[str, float]] = None,
    ) -> None:
        """Collect every variant :meth:`_term_value` may need for one Pauli term."""
        if self._inactive_qubit_factor(term) == 0.0:
            return
        base = 0.5 ** len(self.solution.wire_cuts)
        for assignment in self._wire_cut_assignments():
            for instance_map, instance_coefficient in self._gate_cut_instance_maps():
                if instance_coefficient == 0.0:
                    continue
                for spec in self.specs:
                    key, plan = self._expectation_plan(spec, term, assignment, instance_map)
                    if weights_out is not None:
                        coefficient = term.coefficient * base * instance_coefficient
                        for weight, variant in plan:
                            fingerprint = request_key(variant)
                            weights_out[fingerprint] = weights_out.get(
                                fingerprint, 0.0
                            ) + abs(coefficient * weight)
                    if key not in scheduled:
                        scheduled.add(key)
                        batch.extend(variant for _, variant in plan)

    # ------------------------------------------------------------------ plans
    def _builder(self, spec: SubcircuitSpec) -> VariantBuilder:
        return self._builders[spec.index]

    def _built_variant(
        self,
        spec: SubcircuitSpec,
        settings: VariantSettings,
        mode: str,
        term: Optional[PauliString],
    ) -> SubcircuitVariant:
        """Build (or reuse) the concrete circuit for one setting combination."""
        memo_key = (spec.index, settings, mode, term.paulis if term is not None else None)
        variant = self._variant_memo.get(memo_key)
        if variant is None:
            variant = self._builder(spec).build(settings, mode, term)
            self._variant_memo[memo_key] = variant
        return variant

    def _restricted_assignment(
        self, spec: SubcircuitSpec, assignment: Mapping[str, str]
    ) -> Tuple[Dict[str, str], Dict[str, str]]:
        upstream = {cut.identifier(): assignment[cut.identifier()] for cut in spec.upstream_cuts}
        downstream_basis = {
            cut.identifier(): assignment[cut.identifier()] for cut in spec.downstream_cuts
        }
        return upstream, downstream_basis

    def _downstream_choices(
        self, downstream_basis: Mapping[str, str], identifiers: Sequence[str]
    ) -> Iterator[Tuple[Dict[str, str], float]]:
        """Init-label choices for the downstream cut ends, with their weights."""
        iterator = (
            itertools.product(
                *[INIT_STATE_DECOMPOSITION[downstream_basis[i]] for i in identifiers]
            )
            if identifiers
            else [()]
        )
        for choice in iterator:
            labels = {i: label for i, (label, _) in zip(identifiers, choice)}
            weight = 1.0
            for _, coefficient in choice:
                weight *= coefficient
            yield labels, weight

    def _distribution_plan(
        self, spec: SubcircuitSpec, assignment: Mapping[str, str]
    ) -> Tuple[Tuple, Plan]:
        """Weighted variants forming one subcircuit's effective distribution."""
        upstream, downstream_basis = self._restricted_assignment(spec, assignment)
        cache_key = (
            spec.index,
            tuple(sorted(upstream.items())),
            tuple(sorted(downstream_basis.items())),
        )
        plan = self._distribution_plans.get(cache_key)
        if plan is None:
            identifiers = [cut.identifier() for cut in spec.downstream_cuts]
            plan = []
            for labels, weight in self._downstream_choices(downstream_basis, identifiers):
                settings = VariantSettings.build(upstream, labels, {})
                plan.append((weight, self._built_variant(spec, settings, "probability", None)))
            self._distribution_plans[cache_key] = plan
        return cache_key, plan

    def _expectation_plan(
        self,
        spec: SubcircuitSpec,
        term: PauliString,
        assignment: Mapping[str, str],
        instance_map: Mapping[int, int],
    ) -> Tuple[Tuple, Plan]:
        """Weighted variants forming one subcircuit's effective expectation."""
        upstream, downstream_basis = self._restricted_assignment(spec, assignment)
        local_instances = {
            op_index: instance_map[op_index] for op_index in spec.gate_cut_sides
        }
        restricted_term = term.restricted_to(spec.output_qubits)
        cache_key = (
            spec.index,
            tuple(sorted(upstream.items())),
            tuple(sorted(downstream_basis.items())),
            tuple(sorted(local_instances.items())),
            restricted_term.paulis,
        )
        plan = self._expectation_plans.get(cache_key)
        if plan is None:
            identifiers = [cut.identifier() for cut in spec.downstream_cuts]
            plan = []
            for labels, weight in self._downstream_choices(downstream_basis, identifiers):
                settings = VariantSettings.build(upstream, labels, local_instances)
                plan.append(
                    (
                        weight,
                        self._built_variant(spec, settings, "expectation", restricted_term),
                    )
                )
            self._expectation_plans[cache_key] = plan
        return cache_key, plan

    # ------------------------------------------------------------------ contraction
    def _result_for(
        self,
        variant: SubcircuitVariant,
        table: Mapping[str, VariantResult],
        missing: str = "execute",
    ) -> Optional[VariantResult]:
        result = table.get(request_key(variant))
        if result is None:
            if missing == "skip":
                # Truncated contraction: the variant was pruned out; its
                # contribution is exactly zero (the bias this introduces is
                # bounded a priori by PruningReport.bias_bound).
                return None
            if missing == "error":
                raise ReconstructionError(
                    f"results table is missing variant {request_key(variant)[:12]}... "
                    f"for subcircuit {variant.subcircuit_index} (missing='error')"
                )
            # Defensive: a variant that escaped enumeration is executed on demand
            # through the same engine path (counted, cached), keeping phase two
            # total even for subclasses with exotic contraction orders.
            result = self.engine.lookup(variant)
        return result

    def _effective_distribution(
        self,
        spec: SubcircuitSpec,
        assignment: Mapping[str, str],
        table: Mapping[str, VariantResult],
        missing: str = "execute",
        cache: Optional[Dict[Tuple, np.ndarray]] = None,
    ) -> np.ndarray:
        """Downstream-decomposition-weighted quasi-distribution for one subcircuit."""
        cache_key, plan = self._distribution_plan(spec, assignment)
        if cache is None:
            cache = {}
        cached = cache.get(cache_key)
        if cached is not None:
            return cached
        total = np.zeros(2 ** len(spec.output_qubits))
        for weight, variant in plan:
            result = self._result_for(variant, table, missing)
            if result is None:
                continue
            if result.distribution is None:
                raise ReconstructionError(
                    f"executor returned no distribution for subcircuit {spec.index}"
                )
            total = total + weight * result.distribution
        cache[cache_key] = total
        return total

    def _term_value(
        self,
        term: PauliString,
        table: Mapping[str, VariantResult],
        missing: str = "execute",
        cache: Optional[Dict[Tuple, float]] = None,
    ) -> float:
        inactive_factor = self._inactive_qubit_factor(term)
        if inactive_factor == 0.0:
            return 0.0
        value = 0.0
        base_coefficient = 0.5 ** len(self.solution.wire_cuts)
        for assignment in self._wire_cut_assignments():
            for instance_map, instance_coefficient in self._gate_cut_instance_maps():
                coefficient = base_coefficient * instance_coefficient
                if coefficient == 0.0:
                    continue
                product = 1.0
                for spec in self.specs:
                    product *= self._effective_expectation(
                        spec, term, assignment, instance_map, table, missing, cache
                    )
                    if product == 0.0:
                        break
                value += coefficient * product
        return value * inactive_factor

    def _effective_expectation(
        self,
        spec: SubcircuitSpec,
        term: PauliString,
        assignment: Mapping[str, str],
        instance_map: Mapping[int, int],
        table: Mapping[str, VariantResult],
        missing: str = "execute",
        cache: Optional[Dict[Tuple, float]] = None,
    ) -> float:
        cache_key, plan = self._expectation_plan(spec, term, assignment, instance_map)
        if cache is None:
            cache = {}
        cached = cache.get(cache_key)
        if cached is not None:
            return cached
        total = 0.0
        for weight, variant in plan:
            result = self._result_for(variant, table, missing)
            if result is None:
                continue
            if result.value is None:
                raise ReconstructionError(
                    f"executor returned no expectation value for subcircuit {spec.index}"
                )
            total += weight * result.value
        cache[cache_key] = total
        return total

    def _inactive_qubit_factor(self, term: PauliString) -> float:
        """Pauli factors on qubits no subcircuit outputs (idle qubits stay in |0>)."""
        covered = set()
        for spec in self.specs:
            covered.update(spec.output_qubits)
        factor = 1.0
        for qubit, label in term.paulis:
            if qubit in covered:
                continue
            if label == "Z":
                continue
            return 0.0
        return factor


def _combine_subcircuit_vectors(
    vectors: Sequence[np.ndarray], orders: Sequence[Sequence[int]]
) -> Tuple[np.ndarray, List[int]]:
    """Kronecker-combine per-subcircuit vectors; return (vector, LSB-first qubit list)."""
    combined = np.array([1.0])
    order_lsb: List[int] = []
    for vector, order in zip(vectors, orders):
        combined = np.kron(combined, vector)
        order_lsb = list(order) + order_lsb
    return combined, order_lsb


def _scatter_into(
    total: np.ndarray,
    combined: np.ndarray,
    order_lsb: Sequence[int],
    coefficient: float,
    num_qubits: int,
) -> None:
    """Scatter a combined vector into the global basis ordering of ``num_qubits``."""
    # Exact integer width check — float log2 can misround for wide vectors.
    if len(combined) != 2 ** len(order_lsb):
        raise ReconstructionError("qubit order does not match combined vector size")
    indices = np.arange(len(combined))
    global_indices = np.zeros_like(indices)
    for position, qubit in enumerate(order_lsb):
        if qubit >= num_qubits:
            raise ReconstructionError(f"output qubit {qubit} outside circuit")
        global_indices |= ((indices >> position) & 1) << qubit
    np.add.at(total, global_indices, coefficient * combined)
