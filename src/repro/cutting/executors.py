"""Executors: how subcircuit variants are evaluated.

Reconstruction needs two quantities per variant:

* ``expectation_value(variant)`` — the outcome-sign-weighted expectation
  ``sum_branches sign * probability`` (wire-cut signs, gate-cut signs and the
  observable-term measurement signs are all folded into the branch signs by the
  variant builder),
* ``quasi_distribution(variant)`` — the sign-weighted distribution over the
  variant's original-output qubits.

Executors are *batch-capable backends* behind the execution engine
(:mod:`repro.engine`): :meth:`VariantExecutor.run_batch` dedups requests by
fingerprint, satisfies repeats from the shared bounded
:class:`~repro.engine.cache.ResultCache`, and executes only the unique misses —
in-process by default, or through whatever ``dispatch`` callable a
:class:`~repro.engine.ParallelEngine` supplies (chunked worker pools).  The
single-variant convenience API is kept and routed through the same path, so the
dedup-aware ``executions`` counter is authoritative however the executor is
driven.

Four executors are provided:

* :class:`ExactExecutor` — exact branching simulation (the default; makes the
  reconstruction identities hold to numerical precision),
* :class:`BatchedExactExecutor` — the vectorized fast path: cache-miss requests
  are grouped by circuit structure (:func:`repro.simulator.batched.variant_group_key`)
  and each group is evaluated in one ``(batch, 2**n)`` pass, bit-identical to
  :class:`ExactExecutor` but several times faster on variant families,
* :class:`~repro.cutting.sampling.SamplingExecutor` (in
  :mod:`repro.cutting.sampling`) — finite-shot estimation: every variant value is
  the mean of ``shots`` multinomial samples, with optional per-variant shot
  allocation (Section 2.2's shots-based model),
* :class:`NoisyExecutor` — the "small quantum device" of the Table 3 experiment: the
  variant is compiled to the device basis, Pauli noise is injected stochastically
  per trajectory, and finite-shot statistical noise is emulated; results are averaged
  over trajectories.  Each request is seeded deterministically from its fingerprint,
  so serial and parallel batch runs are bit-identical, and results are cached under
  seed-aware keys.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Type

import numpy as np

from ..circuits import Circuit, decompose_to_basis
from ..engine.cache import (
    ResultCache,
    build_cache_namespace,
    scoped_cache_namespace,
)
from ..engine.requests import (
    VariantResult,
    request_key,
    seed_from_fingerprint,
)
from ..exceptions import CuttingError
from ..simulator.batched import (
    _OUTPUT_TAG_PREFIX,
    branch_bound,
    simulate_variant_group,
    variant_group_key,
)
from ..simulator.dynamic import BranchedResult, BranchingSimulator
from ..simulator.noise import DeviceModel, inject_pauli_noise
from .variants import SubcircuitVariant

__all__ = ["VariantExecutor", "ExactExecutor", "BatchedExactExecutor", "NoisyExecutor"]

#: A dispatch backend: receives the executor and the unique cache-miss requests
#: ``[(fingerprint, variant, seed), ...]`` and returns ``[(fingerprint, result)]``.
DispatchFn = Callable[["VariantExecutor", Sequence[Tuple]], Iterable[Tuple[str, VariantResult]]]


def _unpickled_executor(executor: "VariantExecutor") -> "VariantExecutor":
    """Default spawn factory: the executor itself travels by pickle."""
    return executor


def _signed_value(result: BranchedResult) -> float:
    return result.expectation_of_signs()


def branch_output_index(branch: Any, variant: SubcircuitVariant) -> int:
    """Basis index of a branch's recorded outcomes over the variant's output qubits."""
    index = 0
    for position, qubit in enumerate(variant.output_qubit_order):
        outcome = branch.outcomes.get(f"out:{qubit}")
        if outcome is None:
            raise CuttingError(
                f"variant for subcircuit {variant.subcircuit_index} did not record "
                f"an outcome for original qubit {qubit}"
            )
        index |= outcome << position
    return index


def _signed_distribution(result: BranchedResult, variant: SubcircuitVariant) -> np.ndarray:
    """Quasi-distribution over the variant's output qubits from recorded outcomes."""
    distribution = np.zeros(2 ** len(variant.output_qubit_order))
    for branch in result.branches:
        distribution[branch_output_index(branch, variant)] += branch.sign * branch.probability
    return distribution


class VariantExecutor(ABC):
    """Batch-capable strategy object evaluating subcircuit variants.

    Args:
        cache: the shared bounded :class:`~repro.engine.cache.ResultCache`
            holding this executor's results (a private default-sized cache is
            created when omitted).  Executors sharing one cache share results —
            safe because cache keys are namespaced per executor configuration
            (see :meth:`cache_namespace` / :meth:`cache_key`).

    Subclasses implement :meth:`execute_variant`; everything else (dedup,
    caching, counters, batch dispatch, worker-process transport) is inherited.
    """

    def __init__(self, cache: Optional[ResultCache] = None) -> None:
        self._cache = cache if cache is not None else ResultCache()
        self._cache_scope: Optional[str] = None
        self._executions = 0
        self._requests = 0
        self._dedup_hits = 0
        self._cache_hits = 0

    # ------------------------------------------------------------------ protocol
    @abstractmethod
    def execute_variant(
        self, variant: SubcircuitVariant, seed: Optional[Tuple[int, ...]] = None
    ) -> VariantResult:
        """Run one variant circuit and return its result payload.

        ``seed`` is the engine's deterministic per-request seed material (``None``
        for deterministic executors); implementations must depend only on
        ``(variant, seed)`` so that batches parallelise reproducibly.
        """

    def seed_for(self, fingerprint: str) -> Optional[Tuple[int, ...]]:
        """Per-request seed material; None for deterministic executors."""
        return None

    def run_many(
        self, pending: Sequence[Tuple[str, SubcircuitVariant, Optional[Tuple[int, ...]]]]
    ) -> List[Tuple[str, VariantResult]]:
        """Execute unique cache-miss requests; return ``[(fingerprint, result)]``.

        ``pending`` holds ``(fingerprint, variant, seed)`` triples that already
        passed dedup and cache lookup.  The default runs each request through
        :meth:`execute_variant` in order; batch-capable executors (see
        :class:`BatchedExactExecutor`) override this with a vectorized fast
        path.  Both the serial :meth:`run_batch` path and the engine's worker
        chunks call it, so one override accelerates in-process and pooled
        execution alike.  Result order is irrelevant to callers (they key by
        fingerprint), but every pending fingerprint must appear exactly once.
        """
        return [
            (key, self.execute_variant(variant, seed=seed))
            for key, variant, seed in pending
        ]

    def cache_namespace(self) -> str:
        """Key prefix isolating this executor's results in a shared cache."""
        return type(self).__name__

    def set_cache_scope(self, scope: Optional[str]) -> None:
        """Extra key prefix layered on top of :meth:`cache_namespace`.

        Set by :class:`~repro.engine.ParallelEngine` when a *heterogeneous*
        device farm executes this executor's requests on per-device backends:
        which backend produced a result then depends on routing, so those
        results must never alias what the same executor class would store in a
        shared cache without the farm.  ``None`` (the default) leaves keys
        unchanged.
        """
        self._cache_scope = scope

    def _scoped_namespace(self) -> str:
        return scoped_cache_namespace(self.cache_namespace(), self._cache_scope)

    def cache_key(self, fingerprint: str) -> str:
        """Cache key for one request within this executor's namespace.

        Defaults to the fingerprint itself.  Executors whose result depends on
        per-request state beyond the variant circuit (e.g. a per-variant shot
        allocation) must fold that state in here, so results taken under
        different settings never alias in the shared cache.
        """
        return fingerprint

    def spawn_spec(self) -> Tuple[Callable, Tuple]:
        """(factory, args) rebuilding an equivalent executor in a worker process.

        The default pickles this instance (minus cached results, see
        ``__getstate__``), so subclasses with constructor arguments behave
        correctly in process pools without overriding anything.  Executors with
        cheap, explicit constructor state may override to avoid pickling
        themselves (see :meth:`NoisyExecutor.spawn_spec`).
        """
        return _unpickled_executor, (self,)

    def __getstate__(self) -> Dict:
        """Pickle support: ship configuration, never the cached result payloads."""
        state = dict(self.__dict__)
        state["_cache"] = ResultCache(self._cache.maxsize)
        return state

    # ------------------------------------------------------------------ batch API
    def run_batch(
        self,
        variants: Iterable[SubcircuitVariant],
        dispatch: Optional[DispatchFn] = None,
    ) -> Dict[str, VariantResult]:
        """Execute a batch of variants; return ``fingerprint -> VariantResult``.

        Requests are deduped by fingerprint and satisfied from the shared cache
        where possible; only the unique misses are executed (serially, or by the
        supplied ``dispatch`` backend).  The ``executions`` counter advances by
        exactly the number of unique misses.
        """
        namespace = self._scoped_namespace()
        table: Dict[str, VariantResult] = {}
        pending: List[Tuple[str, SubcircuitVariant, Optional[Tuple[int, ...]]]] = []
        scheduled: set = set()
        for variant in variants:
            self._requests += 1
            key = request_key(variant)
            if key in table or key in scheduled:
                self._dedup_hits += 1
                continue
            cached = self._cache.get((namespace, self.cache_key(key)))
            if cached is not None:
                self._cache_hits += 1
                table[key] = cached
                continue
            pending.append((key, variant, self.seed_for(key)))
            scheduled.add(key)
        if pending:
            if dispatch is None:
                results: Iterable[Tuple[str, VariantResult]] = self.run_many(pending)
            else:
                results = dispatch(self, pending)
            for key, result in results:
                self._cache.put((namespace, self.cache_key(key)), result)
                table[key] = result
            self._executions += len(pending)
        return table

    # ------------------------------------------------------------------ single API
    def expectation_value(self, variant: SubcircuitVariant) -> float:
        """Sign-weighted expectation of the variant."""
        result = self.run_batch([variant])[request_key(variant)]
        if result.value is None:
            raise CuttingError(
                f"executor {type(self).__name__} produced no expectation value for a "
                f"{variant.mode!r}-mode variant"
            )
        return result.value

    def quasi_distribution(self, variant: SubcircuitVariant) -> np.ndarray:
        """Sign-weighted distribution over the variant's output qubits.

        Returns a private copy: the underlying array lives in the shared result
        cache, which must never be mutated through a caller's handle.
        """
        result = self.run_batch([variant])[request_key(variant)]
        if result.distribution is None:
            raise CuttingError(
                f"executor {type(self).__name__} produced no distribution for a "
                f"{variant.mode!r}-mode variant (distributions require probability mode)"
            )
        return result.distribution.copy()

    # ------------------------------------------------------------------ accounting
    @property
    def cache(self) -> ResultCache:
        return self._cache

    @property
    def executions(self) -> int:
        """Unique variant circuits executed (dedup-aware, for overhead reporting)."""
        return self._executions

    @property
    def requests(self) -> int:
        """Total variant requests received (including dedup and cache hits)."""
        return self._requests

    @property
    def dedup_hits(self) -> int:
        return self._dedup_hits

    @property
    def cache_hits(self) -> int:
        return self._cache_hits


class ExactExecutor(VariantExecutor):
    """Exact, noise-free evaluation through the branching simulator."""

    def __init__(self, cache: Optional[ResultCache] = None) -> None:
        super().__init__(cache)
        self._simulator = BranchingSimulator()

    def execute_variant(
        self, variant: SubcircuitVariant, seed: Optional[Tuple[int, ...]] = None
    ) -> VariantResult:
        result = self._simulator.run(variant.circuit)
        distribution = (
            _signed_distribution(result, variant) if variant.mode == "probability" else None
        )
        return VariantResult(value=_signed_value(result), distribution=distribution)


#: Complex-element budget of one batched simulation pass (see
#: :class:`BatchedExactExecutor`): ``2**23`` elements is ~128 MB of amplitudes.
DEFAULT_MAX_BATCH_ELEMENTS = 1 << 23


class BatchedExactExecutor(VariantExecutor):
    """Vectorized exact evaluation: same-structure variants share one batched pass.

    Variants of one fragment share their two-qubit gates and measurement/reset
    skeleton and differ only in single-qubit gates (initialisation labels,
    measurement-basis rotations, gate-cut instance actions).  :meth:`run_many`
    groups cache-miss requests by
    :func:`~repro.simulator.batched.variant_group_key` and evaluates each group
    through :func:`~repro.simulator.batched.simulate_variant_group` — a single
    ``(batch, 2**n)`` array walked gate by gate — instead of one full scalar
    pass per variant.

    Results are **bit-identical** to :class:`ExactExecutor`: both run the same
    elementwise gate kernel and the batched path reproduces the scalar
    branching simulator's projection sums, branch order and accumulation order
    exactly (see :mod:`repro.simulator.batched`).  Fingerprints, cache keys,
    dedup and the ``executions`` counter behave identically, so the two
    executors are drop-in interchangeable.

    Args:
        cache: the shared bounded result cache (as on every executor).
        max_batch_elements: sizing budget per batched pass, in complex
            amplitudes; ``2**23`` (~128 MB) by default.  Groups are split into
            sub-batches so that ``batch * 2**n *``
            :func:`~repro.simulator.batched.branch_bound` stays under it.  The
            branch bound caps its worst case at ``2**12`` branch points, so
            this is a *sizing heuristic*, not a hard memory guarantee: a
            measurement-heavy group whose branches genuinely fan out past the
            cap can exceed the budget — exactly as the scalar simulator's
            branch list would for the same circuits, since live branch rows
            cost the same either way.
    """

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        max_batch_elements: int = DEFAULT_MAX_BATCH_ELEMENTS,
    ) -> None:
        if max_batch_elements < 1:
            raise CuttingError(
                f"max_batch_elements must be >= 1, got {max_batch_elements}"
            )
        super().__init__(cache)
        self._max_batch_elements = int(max_batch_elements)

    # ------------------------------------------------------------------ grouping
    def group_key(self, variant: SubcircuitVariant) -> Tuple:
        """Structure key under which requests can share one batched pass.

        The :class:`~repro.engine.ParallelEngine` also calls this to keep
        same-structure requests together when it chunks a batch across worker
        tasks, so the fast path survives parallel dispatch.
        """
        return variant_group_key(variant.circuit)

    @staticmethod
    def _check_outputs(variant: SubcircuitVariant) -> None:
        """Probability-mode variants must measure every output qubit (``out:`` tags).

        Mirrors the scalar path, which raises when a branch lacks an output
        outcome; the batched path validates up front because it never builds
        per-branch outcome dictionaries.
        """
        if getattr(variant, "mode", None) != "probability":
            return
        recorded = {
            op.tag[len(_OUTPUT_TAG_PREFIX) :]
            for op in variant.circuit
            if op.is_measurement and op.tag and op.tag.startswith(_OUTPUT_TAG_PREFIX)
        }
        for qubit in variant.output_qubit_order:
            if str(qubit) not in recorded:
                raise CuttingError(
                    f"variant for subcircuit {variant.subcircuit_index} did not record "
                    f"an outcome for original qubit {qubit}"
                )

    # ------------------------------------------------------------------ execution
    def execute_variant(
        self, variant: SubcircuitVariant, seed: Optional[Tuple[int, ...]] = None
    ) -> VariantResult:
        self._check_outputs(variant)
        value, distribution = simulate_variant_group([variant])[0]
        return VariantResult(value=value, distribution=distribution)

    def run_many(
        self, pending: Sequence[Tuple[str, SubcircuitVariant, Optional[Tuple[int, ...]]]]
    ) -> List[Tuple[str, VariantResult]]:
        """Group pending requests by structure and run each group batched.

        Groups keep first-seen order and requests keep their order within a
        group; groups larger than the memory budget are split into sub-batches
        (so a "ragged" final sub-batch — even a single variant — flows through
        the same code path and stays bit-identical).
        """
        groups: Dict[Tuple, List[Tuple[str, SubcircuitVariant]]] = {}
        for key, variant, _ in pending:
            self._check_outputs(variant)
            groups.setdefault(self.group_key(variant), []).append((key, variant))
        results: List[Tuple[str, VariantResult]] = []
        for items in groups.values():
            circuit = items[0][1].circuit
            per_variant = (2**circuit.num_qubits) * branch_bound(circuit)
            limit = max(1, self._max_batch_elements // per_variant)
            for start in range(0, len(items), limit):
                chunk = items[start : start + limit]
                outcomes = simulate_variant_group([variant for _, variant in chunk])
                for (key, _), (value, distribution) in zip(chunk, outcomes):
                    results.append(
                        (key, VariantResult(value=value, distribution=distribution))
                    )
        return results


class NoisyExecutor(VariantExecutor):
    """Noisy-device evaluation: stochastic Pauli injection + finite-shot emulation.

    Each variant is compiled to the device's native basis (routing is skipped when the
    variant uses fewer wires than the device has qubits, mirroring how small
    subcircuits are placed on the best-connected physical qubits).  ``trajectories``
    independent noise realisations are simulated exactly and averaged; when ``shots``
    is given, zero-mean Gaussian noise with the binomial standard error of the shot
    budget is added to expectation-type values.

    Every request draws its own RNG seeded from ``(seed, fingerprint)``, so results
    are independent of execution order (serial == parallel, bit for bit) and can be
    cached under seed-aware keys.  ``executions`` counts *variants*, not
    trajectories, making overhead reports comparable with :class:`ExactExecutor`.
    """

    def __init__(
        self,
        device: DeviceModel,
        shots: Optional[int] = 16384,
        trajectories: int = 25,
        seed: Optional[int] = None,
        cache: Optional[ResultCache] = None,
    ) -> None:
        if trajectories < 1:
            raise CuttingError("trajectories must be >= 1")
        super().__init__(cache)
        self._device = device
        self._shots = shots
        self._trajectories = trajectories
        if seed is None:
            # Draw a base seed once so the instance is self-consistent (and
            # shippable to worker processes) even without an explicit seed.
            seed = int(np.random.SeedSequence().entropy) & 0xFFFFFFFFFFFFFFFF  # qrcclint: disable=unseeded-randomness -- one-time base-seed draw when the caller passes none; every per-request draw is then derived from (base_seed, fingerprint)
        self._base_seed = int(seed)
        self._simulator = BranchingSimulator()

    # ------------------------------------------------------------------ protocol
    def seed_for(self, fingerprint: str) -> Tuple[int, ...]:
        return seed_from_fingerprint(fingerprint, self._base_seed)

    def cache_namespace(self) -> str:
        noise = self._device.noise
        return build_cache_namespace(
            "noisy",
            parts=(
                self._device.name,
                self._device.num_qubits,
                noise.two_qubit_error,
                noise.single_qubit_error,
                self._shots,
                self._trajectories,
            ),
            seed=self._base_seed,
        )

    def spawn_spec(self) -> Tuple[Type["NoisyExecutor"], Tuple]:
        return NoisyExecutor, (self._device, self._shots, self._trajectories, self._base_seed)

    # ------------------------------------------------------------------ execution
    def _prepare(self, variant: SubcircuitVariant) -> Circuit:
        if variant.num_wires > self._device.num_qubits:
            raise CuttingError(
                f"variant needs {variant.num_wires} qubits but device "
                f"{self._device.name} only has {self._device.num_qubits}"
            )
        return decompose_to_basis(variant.circuit)

    def execute_variant(
        self, variant: SubcircuitVariant, seed: Optional[Tuple[int, ...]] = None
    ) -> VariantResult:
        if seed is None:
            seed = self.seed_for(request_key(variant))
        rng = np.random.default_rng(seed)
        compiled = self._prepare(variant)
        values: List[float] = []
        distribution_total: Optional[np.ndarray] = None
        if variant.mode == "probability":
            distribution_total = np.zeros(2 ** len(variant.output_qubit_order))
        for _ in range(self._trajectories):
            result = self._simulator.run(
                inject_pauli_noise(compiled, self._device.noise, rng)
            )
            values.append(_signed_value(result))
            if distribution_total is not None:
                distribution_total += _signed_distribution(result, variant)
        value = float(np.mean(values))
        distribution: Optional[np.ndarray] = None
        if distribution_total is not None:
            distribution = distribution_total / self._trajectories
        if self._shots:
            sigma = 1.0 / np.sqrt(self._shots)
            value += float(rng.normal(0.0, sigma))
            if distribution is not None:
                distribution = distribution + rng.normal(0.0, sigma, size=distribution.shape)
        return VariantResult(value=value, distribution=distribution)
