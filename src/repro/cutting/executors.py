"""Executors: how subcircuit variants are evaluated.

Reconstruction needs two quantities per variant:

* ``expectation_value(variant)`` — the outcome-sign-weighted expectation
  ``sum_branches sign * probability`` (wire-cut signs, gate-cut signs and the
  observable-term measurement signs are all folded into the branch signs by the
  variant builder),
* ``quasi_distribution(variant)`` — the sign-weighted distribution over the
  variant's original-output qubits.

Two executors are provided:

* :class:`ExactExecutor` — exact branching simulation (the default; makes the
  reconstruction identities hold to numerical precision),
* :class:`NoisyExecutor` — the "small quantum device" of the Table 3 experiment: the
  variant is compiled to the device basis, Pauli noise is injected stochastically
  per trajectory, and finite-shot statistical noise is emulated; results are averaged
  over trajectories.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Optional, Tuple

import numpy as np

from ..circuits import Circuit, decompose_to_basis
from ..exceptions import CuttingError
from ..simulator.dynamic import BranchedResult, BranchingSimulator
from ..simulator.noise import DeviceModel
from .variants import SubcircuitVariant

__all__ = ["VariantExecutor", "ExactExecutor", "NoisyExecutor"]


def _signed_value(result: BranchedResult) -> float:
    return result.expectation_of_signs()


def _signed_distribution(result: BranchedResult, variant: SubcircuitVariant) -> np.ndarray:
    """Quasi-distribution over the variant's output qubits from recorded outcomes."""
    order = variant.output_qubit_order
    distribution = np.zeros(2 ** len(order))
    for branch in result.branches:
        index = 0
        for position, qubit in enumerate(order):
            outcome = branch.outcomes.get(f"out:{qubit}")
            if outcome is None:
                raise CuttingError(
                    f"variant for subcircuit {variant.subcircuit_index} did not record "
                    f"an outcome for original qubit {qubit}"
                )
            index |= outcome << position
        distribution[index] += branch.sign * branch.probability
    return distribution


class VariantExecutor(ABC):
    """Strategy object evaluating subcircuit variants."""

    @abstractmethod
    def expectation_value(self, variant: SubcircuitVariant) -> float:
        """Sign-weighted expectation of the variant."""

    @abstractmethod
    def quasi_distribution(self, variant: SubcircuitVariant) -> np.ndarray:
        """Sign-weighted distribution over the variant's output qubits."""

    @property
    def executions(self) -> int:
        """Number of variant circuits this executor has evaluated (for reporting)."""
        return getattr(self, "_executions", 0)

    def _count(self) -> None:
        self._executions = getattr(self, "_executions", 0) + 1


class ExactExecutor(VariantExecutor):
    """Exact, noise-free evaluation through the branching simulator."""

    def __init__(self) -> None:
        self._simulator = BranchingSimulator()
        self._cache: Dict[Tuple[int, object, str], BranchedResult] = {}

    def _run(self, variant: SubcircuitVariant) -> BranchedResult:
        key = (variant.subcircuit_index, variant.settings, str(variant.pauli_term))
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        self._count()
        result = self._simulator.run(variant.circuit)
        self._cache[key] = result
        return result

    def expectation_value(self, variant: SubcircuitVariant) -> float:
        return _signed_value(self._run(variant))

    def quasi_distribution(self, variant: SubcircuitVariant) -> np.ndarray:
        return _signed_distribution(self._run(variant), variant)


class NoisyExecutor(VariantExecutor):
    """Noisy-device evaluation: stochastic Pauli injection + finite-shot emulation.

    Each variant is compiled to the device's native basis (routing is skipped when the
    variant uses fewer wires than the device has qubits, mirroring how small
    subcircuits are placed on the best-connected physical qubits).  ``trajectories``
    independent noise realisations are simulated exactly and averaged; when ``shots``
    is given, zero-mean Gaussian noise with the binomial standard error of the shot
    budget is added to expectation-type values.
    """

    def __init__(
        self,
        device: DeviceModel,
        shots: Optional[int] = 16384,
        trajectories: int = 25,
        seed: Optional[int] = None,
    ) -> None:
        if trajectories < 1:
            raise CuttingError("trajectories must be >= 1")
        self._device = device
        self._shots = shots
        self._trajectories = trajectories
        self._rng = np.random.default_rng(seed)
        self._simulator = BranchingSimulator()

    def _noisy_circuit(self, circuit: Circuit) -> Circuit:
        noise = self._device.noise
        noisy = Circuit(circuit.num_qubits, f"{circuit.name}_noisy")
        for op in circuit:
            noisy.append(op)
            if not op.is_unitary or op.is_identity:
                continue
            rate = noise.two_qubit_error if op.is_two_qubit else noise.single_qubit_error
            for qubit in op.qubits:
                if self._rng.random() < rate:
                    noisy.add(("x", "y", "z")[self._rng.integers(0, 3)], [qubit])
        return noisy

    def _prepare(self, variant: SubcircuitVariant) -> Circuit:
        if variant.num_wires > self._device.num_qubits:
            raise CuttingError(
                f"variant needs {variant.num_wires} qubits but device "
                f"{self._device.name} only has {self._device.num_qubits}"
            )
        return decompose_to_basis(variant.circuit)

    def expectation_value(self, variant: SubcircuitVariant) -> float:
        compiled = self._prepare(variant)
        values = []
        for _ in range(self._trajectories):
            self._count()
            result = self._simulator.run(self._noisy_circuit(compiled))
            values.append(_signed_value(result))
        value = float(np.mean(values))
        if self._shots:
            value += float(self._rng.normal(0.0, 1.0 / np.sqrt(self._shots)))
        return value

    def quasi_distribution(self, variant: SubcircuitVariant) -> np.ndarray:
        compiled = self._prepare(variant)
        total = np.zeros(2 ** len(variant.output_qubit_order))
        for _ in range(self._trajectories):
            self._count()
            result = self._simulator.run(self._noisy_circuit(compiled))
            total += _signed_distribution(result, variant)
        distribution = total / self._trajectories
        if self._shots:
            noise = self._rng.normal(0.0, 1.0 / np.sqrt(self._shots), size=distribution.shape)
            distribution = distribution + noise
        return distribution
