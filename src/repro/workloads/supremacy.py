"""Google-supremacy-style random circuits (the ``SPM`` benchmark).

The circuit follows the structure of Boixo et al.: qubits live on a 2-D grid;
every cycle applies a random single-qubit gate from ``{sqrt(X), sqrt(Y), T}`` to each
qubit and a layer of CZ gates along one of the grid-edge patterns, cycling through
the patterns so every edge is activated periodically.  Connectivity is strictly
nearest-neighbour on the grid, which is why SPM is far easier to cut than QFT.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from ..circuits import Circuit
from ..exceptions import WorkloadError
from .base import Workload, WorkloadKind

__all__ = ["grid_dimensions", "supremacy_circuit", "make_supremacy"]


def grid_dimensions(num_qubits: int) -> Tuple[int, int]:
    """Pick the most-square (rows, cols) grid with ``rows*cols == num_qubits``."""
    best = (1, num_qubits)
    for rows in range(1, int(math.isqrt(num_qubits)) + 1):
        if num_qubits % rows == 0:
            best = (rows, num_qubits // rows)
    return best


def _grid_edges(rows: int, cols: int) -> List[List[Tuple[int, int]]]:
    """Four alternating CZ activation patterns over the grid edges."""

    def qubit(row: int, col: int) -> int:
        return row * cols + col

    horizontal_even, horizontal_odd, vertical_even, vertical_odd = [], [], [], []
    for row in range(rows):
        for col in range(cols - 1):
            edge = (qubit(row, col), qubit(row, col + 1))
            (horizontal_even if col % 2 == 0 else horizontal_odd).append(edge)
    for row in range(rows - 1):
        for col in range(cols):
            edge = (qubit(row, col), qubit(row + 1, col))
            (vertical_even if row % 2 == 0 else vertical_odd).append(edge)
    patterns = [p for p in (horizontal_even, vertical_even, horizontal_odd, vertical_odd) if p]
    return patterns or [[]]


def supremacy_circuit(
    num_qubits: int, depth: int = 8, seed: Optional[int] = 7, rows: Optional[int] = None
) -> Circuit:
    """Random supremacy-style circuit with ``depth`` entangling cycles."""
    if num_qubits < 2:
        raise WorkloadError("supremacy circuits need at least 2 qubits")
    if depth < 1:
        raise WorkloadError("depth must be at least 1")
    if rows is None:
        rows, cols = grid_dimensions(num_qubits)
    else:
        if num_qubits % rows:
            raise WorkloadError(f"rows={rows} does not divide num_qubits={num_qubits}")
        cols = num_qubits // rows
    rng = np.random.default_rng(seed)
    patterns = _grid_edges(rows, cols)
    circuit = Circuit(num_qubits, f"supremacy_{rows}x{cols}_d{depth}")
    for qubit in range(num_qubits):
        circuit.h(qubit)
    single_gates = ("sx", "t", "rx", "ry")
    for cycle in range(depth):
        for qubit in range(num_qubits):
            gate = single_gates[rng.integers(0, len(single_gates))]
            if gate in ("rx", "ry"):
                circuit.add(gate, [qubit], [float(rng.uniform(0, 2 * math.pi))])
            else:
                circuit.add(gate, [qubit])
        for a, b in patterns[cycle % len(patterns)]:
            circuit.cz(a, b)
    return circuit


def make_supremacy(num_qubits: int, depth: int = 8, seed: int = 7) -> Workload:
    """The ``SPM`` probability-vector workload."""
    return Workload(
        name="google_supremacy_random_circuit",
        acronym="SPM",
        circuit=supremacy_circuit(num_qubits, depth, seed),
        kind=WorkloadKind.PROBABILITY,
        params={"N": num_qubits, "depth": depth, "seed": seed},
    )
