"""2-D square-lattice Hamiltonian-simulation workloads (IS / XY / HS and -n variants).

Each workload is one (or more) first-order Trotter steps of the corresponding
lattice model and reports the expectation value of the model Hamiltonian itself:

* **IS** — transverse-field Ising: ``J * sum ZZ + h * sum X``,
* **XY** — XY model: ``J * sum (XX + YY)``,
* **HS** — Heisenberg: ``J * sum (XX + YY + ZZ) + h * sum Z``.

``*-n`` variants add next-nearest-neighbour (diagonal) couplings, doubling the
two-qubit gate density, which is exactly what Table 2 uses them for.
"""

from __future__ import annotations


import networkx as nx

from ..circuits import Circuit
from ..exceptions import WorkloadError
from ..utils.pauli import PauliObservable, PauliString
from .base import Workload, WorkloadKind
from .graphs import grid_graph

__all__ = [
    "ising_observable",
    "xy_observable",
    "heisenberg_observable",
    "trotter_circuit",
    "make_ising",
    "make_xy",
    "make_heisenberg",
]


def ising_observable(graph: nx.Graph, coupling: float = 1.0, field: float = 0.6) -> PauliObservable:
    """Transverse-field Ising Hamiltonian on the lattice ``graph``."""
    terms = [PauliString.from_dict({u: "Z", v: "Z"}, coupling) for u, v in graph.edges]
    terms += [PauliString.from_dict({q: "X"}, field) for q in graph.nodes]
    return PauliObservable(tuple(terms))


def xy_observable(graph: nx.Graph, coupling: float = 1.0) -> PauliObservable:
    """XY-model Hamiltonian on the lattice ``graph``."""
    terms = []
    for u, v in graph.edges:
        terms.append(PauliString.from_dict({u: "X", v: "X"}, coupling))
        terms.append(PauliString.from_dict({u: "Y", v: "Y"}, coupling))
    return PauliObservable(tuple(terms))


def heisenberg_observable(
    graph: nx.Graph, coupling: float = 1.0, field: float = 0.4
) -> PauliObservable:
    """Heisenberg Hamiltonian (XX + YY + ZZ couplings + Z field)."""
    terms = []
    for u, v in graph.edges:
        terms.append(PauliString.from_dict({u: "X", v: "X"}, coupling))
        terms.append(PauliString.from_dict({u: "Y", v: "Y"}, coupling))
        terms.append(PauliString.from_dict({u: "Z", v: "Z"}, coupling))
    terms += [PauliString.from_dict({q: "Z"}, field) for q in graph.nodes]
    return PauliObservable(tuple(terms))


def trotter_circuit(
    graph: nx.Graph,
    model: str,
    steps: int = 1,
    time_step: float = 0.2,
    field: float = 0.6,
) -> Circuit:
    """First-order Trotterised evolution of the given lattice ``model``.

    ``model`` is ``"ising"``, ``"xy"`` or ``"heisenberg"``.  The initial state is
    prepared with a layer of Hadamards so the reported expectation values are
    non-trivial.
    """
    if steps < 1:
        raise WorkloadError("trotter steps must be >= 1")
    model = model.lower()
    if model not in ("ising", "xy", "heisenberg"):
        raise WorkloadError(f"unknown lattice model {model!r}")
    num_qubits = graph.number_of_nodes()
    circuit = Circuit(num_qubits, f"{model}_{num_qubits}q_s{steps}")
    for qubit in range(num_qubits):
        circuit.h(qubit)
    for _ in range(steps):
        if model in ("xy", "heisenberg"):
            for u, v in graph.edges:
                circuit.rxx(2.0 * time_step, u, v)
            for u, v in graph.edges:
                circuit.ryy(2.0 * time_step, u, v)
        if model in ("ising", "heisenberg"):
            for u, v in graph.edges:
                circuit.rzz(2.0 * time_step, u, v)
        if model == "ising":
            for qubit in range(num_qubits):
                circuit.rx(2.0 * time_step * field, qubit)
        elif model == "heisenberg":
            for qubit in range(num_qubits):
                circuit.rz(2.0 * time_step * field, qubit)
    return circuit


def _lattice_workload(
    acronym: str,
    name: str,
    model: str,
    observable_builder,
    num_qubits: int,
    next_nearest: bool,
    steps: int,
) -> Workload:
    graph = grid_graph(num_qubits, next_nearest=next_nearest)
    circuit = trotter_circuit(graph, model, steps=steps)
    return Workload(
        name=name,
        acronym=acronym + ("-n" if next_nearest else ""),
        circuit=circuit,
        kind=WorkloadKind.EXPECTATION,
        observable=observable_builder(graph),
        params={"N": num_qubits, "next_nearest": next_nearest, "steps": steps},
    )


def make_ising(num_qubits: int, next_nearest: bool = False, steps: int = 1) -> Workload:
    """The ``IS`` / ``IS-n`` workload (2-D transverse-field Ising)."""
    return _lattice_workload(
        "IS", "ising_2d_lattice", "ising", ising_observable, num_qubits, next_nearest, steps
    )


def make_xy(num_qubits: int, next_nearest: bool = False, steps: int = 1) -> Workload:
    """The ``XY`` / ``XY-n`` workload (2-D XY model)."""
    return _lattice_workload(
        "XY", "xy_2d_lattice", "xy", xy_observable, num_qubits, next_nearest, steps
    )


def make_heisenberg(num_qubits: int, next_nearest: bool = False, steps: int = 1) -> Workload:
    """The ``HS`` / ``HS-n`` workload (2-D Heisenberg model)."""
    return _lattice_workload(
        "HS",
        "heisenberg_2d_lattice",
        "heisenberg",
        heisenberg_observable,
        num_qubits,
        next_nearest,
        steps,
    )
