"""Hydrogen-chain VQE workload with a linear two-local ansatz (the ``VQE`` benchmark).

The paper simulates the hydrogen-chain VQE with a linear two-local ansatz.  Real
molecular integrals require an electronic-structure package that is not available
offline, so the Hamiltonian here is a *synthetic hydrogen-chain-like* operator: a
1-D chain with nearest-neighbour ZZ/XX couplings and on-site Z terms whose
coefficients decay along the chain (deterministic, seeded).  The circuit — the part
that matters for cutting — is exactly the linear two-local ansatz: alternating layers
of single-qubit ``RY`` rotations and a line of CX entanglers, which is why the paper
reports a single cut for it (nearest-neighbour connectivity only).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..circuits import Circuit
from ..exceptions import WorkloadError
from ..utils.pauli import PauliObservable, PauliString
from .base import Workload, WorkloadKind

__all__ = ["hydrogen_chain_observable", "two_local_ansatz", "make_vqe"]


def hydrogen_chain_observable(num_qubits: int, seed: int = 5) -> PauliObservable:
    """Synthetic hydrogen-chain Hamiltonian (documented substitution, see DESIGN.md)."""
    if num_qubits < 2:
        raise WorkloadError("hydrogen chain needs at least 2 qubits")
    rng = np.random.default_rng(seed)
    terms = []
    for qubit in range(num_qubits):
        terms.append(PauliString.from_dict({qubit: "Z"}, -0.4 - 0.05 * float(rng.random())))
    for qubit in range(num_qubits - 1):
        strength = 0.25 + 0.05 * float(rng.random())
        terms.append(PauliString.from_dict({qubit: "Z", qubit + 1: "Z"}, strength))
        terms.append(PauliString.from_dict({qubit: "X", qubit + 1: "X"}, 0.1 * strength))
    return PauliObservable(tuple(terms))


def two_local_ansatz(
    num_qubits: int,
    layers: int = 2,
    angles: Optional[Sequence[float]] = None,
    seed: int = 5,
) -> Circuit:
    """Linear two-local ansatz: RY rotation layers separated by a CX entangler line."""
    if num_qubits < 2:
        raise WorkloadError("ansatz needs at least 2 qubits")
    if layers < 1:
        raise WorkloadError("ansatz needs at least 1 layer")
    needed = num_qubits * (layers + 1)
    rng = np.random.default_rng(seed)
    if angles is None:
        angles = [float(rng.uniform(0, np.pi)) for _ in range(needed)]
    if len(angles) != needed:
        raise WorkloadError(f"two-local ansatz needs {needed} angles, got {len(angles)}")
    circuit = Circuit(num_qubits, f"vqe_two_local_{num_qubits}q_l{layers}")
    position = 0
    for qubit in range(num_qubits):
        circuit.ry(angles[position], qubit)
        position += 1
    for _ in range(layers):
        for qubit in range(num_qubits - 1):
            circuit.cx(qubit, qubit + 1)
        for qubit in range(num_qubits):
            circuit.ry(angles[position], qubit)
            position += 1
    return circuit


def make_vqe(num_qubits: int, layers: int = 2, seed: int = 5) -> Workload:
    """The ``VQE`` expectation-value workload (hydrogen chain, linear two-local ansatz)."""
    return Workload(
        name="hydrogen_chain_vqe",
        acronym="VQE",
        circuit=two_local_ansatz(num_qubits, layers=layers, seed=seed),
        kind=WorkloadKind.EXPECTATION,
        observable=hydrogen_chain_observable(num_qubits, seed=seed),
        params={"N": num_qubits, "layers": layers, "seed": seed},
    )
