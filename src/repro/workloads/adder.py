"""Cuccaro ripple-carry adder (the ``ADD`` benchmark).

The Cuccaro adder computes ``b <- a + b`` on the qubit layout
``[cin, b0, a0, b1, a1, ..., b_{n-1}, a_{n-1}, cout]`` using MAJ / UMA blocks and a
single ancilla (the paper cites it precisely because it needs only one ancilla).
The MAJ/UMA blocks contain Toffoli gates; since the IR (like the hardware the paper
targets) only provides one- and two-qubit gates, Toffolis are emitted in the
standard 6-CNOT + T decomposition.
"""

from __future__ import annotations

from typing import Optional

from ..circuits import Circuit
from ..exceptions import WorkloadError
from .base import Workload, WorkloadKind

__all__ = ["append_toffoli", "ripple_carry_adder", "make_adder", "adder_qubit_count"]


def append_toffoli(circuit: Circuit, control_a: int, control_b: int, target: int) -> Circuit:
    """Append a Toffoli (CCX) decomposed into {H, T, Tdg, CX}."""
    circuit.h(target)
    circuit.cx(control_b, target)
    circuit.tdg(target)
    circuit.cx(control_a, target)
    circuit.t(target)
    circuit.cx(control_b, target)
    circuit.tdg(target)
    circuit.cx(control_a, target)
    circuit.t(control_b)
    circuit.t(target)
    circuit.h(target)
    circuit.cx(control_a, control_b)
    circuit.t(control_a)
    circuit.tdg(control_b)
    circuit.cx(control_a, control_b)
    return circuit


def _maj(circuit: Circuit, carry: int, b: int, a: int) -> None:
    circuit.cx(a, b)
    circuit.cx(a, carry)
    append_toffoli(circuit, carry, b, a)


def _uma(circuit: Circuit, carry: int, b: int, a: int) -> None:
    append_toffoli(circuit, carry, b, a)
    circuit.cx(a, carry)
    circuit.cx(carry, b)


def adder_qubit_count(num_bits: int) -> int:
    """Total qubits of an ``num_bits``-bit ripple-carry adder (2n data + cin + cout)."""
    return 2 * num_bits + 2


def ripple_carry_adder(
    num_bits: int,
    a_value: Optional[int] = None,
    b_value: Optional[int] = None,
) -> Circuit:
    """Build the Cuccaro ripple-carry adder for two ``num_bits``-bit registers.

    ``a_value`` / ``b_value`` optionally prepare the inputs with X gates so the
    circuit computes a concrete sum (useful for functional tests); by default the
    inputs are put in superposition with Hadamards, which is what the cutting
    benchmark uses (denser, more entangling).
    """
    if num_bits < 1:
        raise WorkloadError("adder needs at least 1 bit")
    num_qubits = adder_qubit_count(num_bits)
    circuit = Circuit(num_qubits, f"adder_{num_bits}b")

    carry_in = 0
    carry_out = num_qubits - 1

    def b_qubit(i: int) -> int:
        return 1 + 2 * i

    def a_qubit(i: int) -> int:
        return 2 + 2 * i

    if a_value is None and b_value is None:
        for i in range(num_bits):
            circuit.h(a_qubit(i))
            circuit.h(b_qubit(i))
    else:
        a_value = a_value or 0
        b_value = b_value or 0
        if a_value >= 2**num_bits or b_value >= 2**num_bits:
            raise WorkloadError("input values do not fit in the register width")
        for i in range(num_bits):
            if (a_value >> i) & 1:
                circuit.x(a_qubit(i))
            if (b_value >> i) & 1:
                circuit.x(b_qubit(i))

    _maj(circuit, carry_in, b_qubit(0), a_qubit(0))
    for i in range(1, num_bits):
        _maj(circuit, a_qubit(i - 1), b_qubit(i), a_qubit(i))
    circuit.cx(a_qubit(num_bits - 1), carry_out)
    for i in reversed(range(1, num_bits)):
        _uma(circuit, a_qubit(i - 1), b_qubit(i), a_qubit(i))
    _uma(circuit, carry_in, b_qubit(0), a_qubit(0))
    return circuit


def make_adder(num_qubits: int) -> Workload:
    """The ``ADD`` probability-vector workload sized by total qubit count.

    ``num_qubits`` is rounded down to the nearest valid adder width (2n+2).
    """
    if num_qubits < 4:
        raise WorkloadError("adder workload needs at least 4 qubits")
    num_bits = (num_qubits - 2) // 2
    circuit = ripple_carry_adder(num_bits)
    return Workload(
        name="cuccaro_ripple_carry_adder",
        acronym="ADD",
        circuit=circuit,
        kind=WorkloadKind.PROBABILITY,
        params={"N": circuit.num_qubits, "bits": num_bits},
    )
