"""Benchmark circuit generators used by the paper's evaluation."""

from .adder import adder_qubit_count, append_toffoli, make_adder, ripple_carry_adder
from .base import Workload, WorkloadKind
from .graphs import barabasi_albert_graph, erdos_renyi_graph, grid_graph, regular_graph
from .hamiltonian import (
    heisenberg_observable,
    ising_observable,
    make_heisenberg,
    make_ising,
    make_xy,
    trotter_circuit,
    xy_observable,
)
from .qaoa import (
    make_barabasi_albert_qaoa,
    make_erdos_renyi_qaoa,
    make_regular_qaoa,
    maxcut_observable,
    qaoa_circuit,
)
from .qft import aqft_circuit, make_aqft, make_qft, qft_circuit
from .registry import (
    EXPECTATION_BENCHMARKS,
    PROBABILITY_BENCHMARKS,
    available_benchmarks,
    make_workload,
)
from .supremacy import make_supremacy, supremacy_circuit
from .vqe import hydrogen_chain_observable, make_vqe, two_local_ansatz

__all__ = [
    "EXPECTATION_BENCHMARKS",
    "PROBABILITY_BENCHMARKS",
    "Workload",
    "WorkloadKind",
    "adder_qubit_count",
    "append_toffoli",
    "aqft_circuit",
    "available_benchmarks",
    "barabasi_albert_graph",
    "erdos_renyi_graph",
    "grid_graph",
    "heisenberg_observable",
    "hydrogen_chain_observable",
    "ising_observable",
    "make_adder",
    "make_aqft",
    "make_barabasi_albert_qaoa",
    "make_erdos_renyi_qaoa",
    "make_heisenberg",
    "make_ising",
    "make_qft",
    "make_regular_qaoa",
    "make_supremacy",
    "make_vqe",
    "make_workload",
    "make_xy",
    "maxcut_observable",
    "qaoa_circuit",
    "qft_circuit",
    "regular_graph",
    "ripple_carry_adder",
    "supremacy_circuit",
    "trotter_circuit",
    "two_local_ansatz",
    "xy_observable",
]
