"""Deterministic graph generators for the QAOA workloads (REG / ERD / BAR).

Thin wrappers over networkx generators with fixed seeds so every benchmark run (and
the paper-table reproduction) uses the same graphs.
"""

from __future__ import annotations


import networkx as nx

from ..exceptions import WorkloadError

__all__ = ["regular_graph", "erdos_renyi_graph", "barabasi_albert_graph", "grid_graph"]


def regular_graph(num_nodes: int, degree: int = 5, seed: int = 11) -> nx.Graph:
    """An ``degree``-regular graph on ``num_nodes`` nodes (paper default m=5)."""
    if num_nodes <= degree:
        raise WorkloadError(f"need more than {degree} nodes for a {degree}-regular graph")
    if (num_nodes * degree) % 2:
        raise WorkloadError("num_nodes * degree must be even for a regular graph")
    return nx.random_regular_graph(degree, num_nodes, seed=seed)


def erdos_renyi_graph(num_nodes: int, probability: float = 0.1, seed: int = 11) -> nx.Graph:
    """An Erdős–Rényi G(n, p) graph (paper default p=0.1), forced to be connected-ish.

    Isolated nodes are attached to their successor so every qubit participates in at
    least one interaction (an isolated qubit is trivially cuttable and would make the
    benchmark degenerate).
    """
    if not 0.0 < probability <= 1.0:
        raise WorkloadError("edge probability must be in (0, 1]")
    graph = nx.gnp_random_graph(num_nodes, probability, seed=seed)
    for node in range(num_nodes):
        if graph.degree(node) == 0:
            graph.add_edge(node, (node + 1) % num_nodes)
    return graph


def barabasi_albert_graph(num_nodes: int, attachment: int = 3, seed: int = 11) -> nx.Graph:
    """A Barabási–Albert preferential-attachment graph (paper default m=3)."""
    if num_nodes <= attachment:
        raise WorkloadError("num_nodes must exceed the attachment parameter")
    return nx.barabasi_albert_graph(num_nodes, attachment, seed=seed)


def grid_graph(num_nodes: int, next_nearest: bool = False) -> nx.Graph:
    """A 2-D square-lattice interaction graph used by the Hamiltonian workloads.

    With ``next_nearest`` the diagonal (next-nearest-neighbour) couplings of the
    ``-n`` benchmark variants are added.
    """
    import math

    rows = int(math.isqrt(num_nodes))
    while num_nodes % rows:
        rows -= 1
    cols = num_nodes // rows
    graph = nx.Graph()
    graph.add_nodes_from(range(num_nodes))

    def qubit(row: int, col: int) -> int:
        return row * cols + col

    for row in range(rows):
        for col in range(cols):
            if col + 1 < cols:
                graph.add_edge(qubit(row, col), qubit(row, col + 1))
            if row + 1 < rows:
                graph.add_edge(qubit(row, col), qubit(row + 1, col))
            if next_nearest:
                if row + 1 < rows and col + 1 < cols:
                    graph.add_edge(qubit(row, col), qubit(row + 1, col + 1))
                if row + 1 < rows and col - 1 >= 0:
                    graph.add_edge(qubit(row, col), qubit(row + 1, col - 1))
    return graph
