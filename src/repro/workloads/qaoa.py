"""QAOA MaxCut workloads on random graphs (REG / ERD / BAR benchmarks).

These are the expectation-value benchmarks of Table 2: a depth-``p`` QAOA ansatz
whose cost layer applies one ``RZZ`` per graph edge and whose output of interest is
the expectation value of the MaxCut Hamiltonian — exactly the setting where gate
cutting becomes usable.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import networkx as nx
import numpy as np

from ..circuits import Circuit
from ..exceptions import WorkloadError
from ..utils.pauli import PauliObservable, PauliString
from .base import Workload, WorkloadKind
from .graphs import barabasi_albert_graph, erdos_renyi_graph, regular_graph

__all__ = [
    "maxcut_observable",
    "qaoa_circuit",
    "make_regular_qaoa",
    "make_erdos_renyi_qaoa",
    "make_barabasi_albert_qaoa",
]


def maxcut_observable(graph: nx.Graph) -> PauliObservable:
    """The MaxCut cost Hamiltonian ``sum_{(u,v) in E} (1 - Z_u Z_v) / 2``.

    The constant part is kept as an identity term so the expectation value equals the
    expected cut size.
    """
    terms = []
    for u, v in graph.edges:
        terms.append(PauliString.from_dict({}, 0.5))
        terms.append(PauliString.from_dict({u: "Z", v: "Z"}, -0.5))
    return PauliObservable(tuple(terms))


def qaoa_circuit(
    graph: nx.Graph,
    layers: int = 1,
    gammas: Optional[Sequence[float]] = None,
    betas: Optional[Sequence[float]] = None,
    seed: int = 3,
) -> Circuit:
    """Standard QAOA ansatz: H on all qubits, then ``layers`` of cost + mixer layers.

    When angles are not supplied, deterministic pseudo-random angles (seeded) are
    used — the cutting benchmarks only care about circuit structure, but examples and
    accuracy experiments want reproducible values.
    """
    if layers < 1:
        raise WorkloadError("QAOA needs at least one layer")
    num_qubits = graph.number_of_nodes()
    rng = np.random.default_rng(seed)
    if gammas is None:
        gammas = [float(rng.uniform(0.1, math.pi / 2)) for _ in range(layers)]
    if betas is None:
        betas = [float(rng.uniform(0.1, math.pi / 2)) for _ in range(layers)]
    if len(gammas) != layers or len(betas) != layers:
        raise WorkloadError("gammas/betas must have one entry per layer")

    circuit = Circuit(num_qubits, f"qaoa_{num_qubits}q_p{layers}")
    for qubit in range(num_qubits):
        circuit.h(qubit)
    for layer in range(layers):
        for u, v in graph.edges:
            circuit.rzz(2.0 * gammas[layer], u, v)
        for qubit in range(num_qubits):
            circuit.rx(2.0 * betas[layer], qubit)
    return circuit


def _make_qaoa_workload(
    graph: nx.Graph, acronym: str, name: str, layers: int, params: dict
) -> Workload:
    circuit = qaoa_circuit(graph, layers=layers)
    return Workload(
        name=name,
        acronym=acronym,
        circuit=circuit,
        kind=WorkloadKind.EXPECTATION,
        observable=maxcut_observable(graph),
        params=params,
    )


def make_regular_qaoa(
    num_qubits: int, degree: int = 5, layers: int = 1, seed: int = 11
) -> Workload:
    """The ``REG`` workload: QAOA MaxCut on an m-regular graph (default m=5)."""
    graph = regular_graph(num_qubits, degree, seed)
    return _make_qaoa_workload(
        graph,
        "REG",
        "qaoa_maxcut_regular",
        layers,
        {"N": num_qubits, "m": degree, "layers": layers, "seed": seed},
    )


def make_erdos_renyi_qaoa(
    num_qubits: int, probability: float = 0.1, layers: int = 1, seed: int = 11
) -> Workload:
    """The ``ERD`` workload: QAOA MaxCut on an Erdős–Rényi graph (default p=0.1)."""
    graph = erdos_renyi_graph(num_qubits, probability, seed)
    return _make_qaoa_workload(
        graph,
        "ERD",
        "qaoa_maxcut_erdos_renyi",
        layers,
        {"N": num_qubits, "p": probability, "layers": layers, "seed": seed},
    )


def make_barabasi_albert_qaoa(
    num_qubits: int, attachment: int = 3, layers: int = 1, seed: int = 11
) -> Workload:
    """The ``BAR`` workload: QAOA MaxCut on a Barabási–Albert graph (default m=3)."""
    graph = barabasi_albert_graph(num_qubits, attachment, seed)
    return _make_qaoa_workload(
        graph,
        "BAR",
        "qaoa_maxcut_barabasi_albert",
        layers,
        {"N": num_qubits, "m": attachment, "layers": layers, "seed": seed},
    )
