"""Registry mapping the paper's benchmark acronyms to workload builders.

The benchmark harnesses address workloads by the same three-letter acronyms the
paper's tables use (``QFT``, ``SPM``, ``ADD``, ``AQFT``, ``REG``, ``ERD``, ``BAR``,
``IS``, ``XY``, ``HS``, ``IS-n``, ``XY-n``, ``HS-n``, ``VQE``); the registry resolves
them to the generator functions with their paper-default parameters.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..exceptions import WorkloadError
from .adder import make_adder
from .base import Workload
from .hamiltonian import make_heisenberg, make_ising, make_xy
from .qaoa import make_barabasi_albert_qaoa, make_erdos_renyi_qaoa, make_regular_qaoa
from .qft import make_aqft, make_qft
from .supremacy import make_supremacy
from .vqe import make_vqe

__all__ = [
    "PROBABILITY_BENCHMARKS",
    "EXPECTATION_BENCHMARKS",
    "available_benchmarks",
    "make_workload",
]

_BUILDERS: Dict[str, Callable[..., Workload]] = {  # qrcclint: disable=mutable-default-arg -- workload registry written only at import time (register() guards duplicates)
    "QFT": make_qft,
    "AQFT": make_aqft,
    "SPM": make_supremacy,
    "ADD": make_adder,
    "REG": make_regular_qaoa,
    "ERD": make_erdos_renyi_qaoa,
    "BAR": make_barabasi_albert_qaoa,
    "IS": lambda n, **kw: make_ising(n, next_nearest=False, **kw),
    "IS-n": lambda n, **kw: make_ising(n, next_nearest=True, **kw),
    "XY": lambda n, **kw: make_xy(n, next_nearest=False, **kw),
    "XY-n": lambda n, **kw: make_xy(n, next_nearest=True, **kw),
    "HS": lambda n, **kw: make_heisenberg(n, next_nearest=False, **kw),
    "HS-n": lambda n, **kw: make_heisenberg(n, next_nearest=True, **kw),
    "VQE": make_vqe,
}

#: Benchmarks that compute probability vectors (Table 1: wire cutting only).
PROBABILITY_BENCHMARKS = ("QFT", "AQFT", "SPM", "ADD")

#: Benchmarks that compute expectation values (Table 2: wire + gate cutting).
EXPECTATION_BENCHMARKS = (
    "REG",
    "ERD",
    "BAR",
    "IS",
    "XY",
    "HS",
    "IS-n",
    "XY-n",
    "HS-n",
    "VQE",
)


def available_benchmarks() -> List[str]:
    """All registered benchmark acronyms."""
    return sorted(_BUILDERS)


def make_workload(acronym: str, num_qubits: int, **kwargs) -> Workload:
    """Build the named benchmark at the requested size with paper-default parameters."""
    try:
        builder = _BUILDERS[acronym]
    except KeyError as exc:
        raise WorkloadError(
            f"unknown benchmark {acronym!r}; available: {available_benchmarks()}"
        ) from exc
    return builder(num_qubits, **kwargs)
