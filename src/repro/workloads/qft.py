"""Quantum Fourier Transform workloads (QFT and AQFT).

QFT is the paper's hardest cutting benchmark: controlled-phase gates between every
qubit pair produce all-to-all connectivity.  AQFT drops the smallest rotations
(controlled-phase angles below ``pi / 2**(degree-1)``), removing long-range
interactions and making cutting much easier — exactly the contrast Table 1 reports.
"""

from __future__ import annotations

import math

from ..circuits import Circuit
from ..exceptions import WorkloadError
from .base import Workload, WorkloadKind

__all__ = ["qft_circuit", "aqft_circuit", "make_qft", "make_aqft"]


def qft_circuit(num_qubits: int, include_swaps: bool = False) -> Circuit:
    """Textbook QFT on ``num_qubits`` qubits.

    ``include_swaps`` appends the final qubit-reversal SWAP network; cutting papers
    (CutQC, QRCC) conventionally omit it because it only relabels outputs.
    """
    if num_qubits < 2:
        raise WorkloadError("QFT needs at least 2 qubits")
    circuit = Circuit(num_qubits, f"qft_{num_qubits}")
    for target in range(num_qubits):
        circuit.h(target)
        for control_offset in range(1, num_qubits - target):
            control = target + control_offset
            angle = math.pi / (2**control_offset)
            circuit.cp(angle, control, target)
    if include_swaps:
        for qubit in range(num_qubits // 2):
            circuit.swap(qubit, num_qubits - 1 - qubit)
    return circuit


def aqft_circuit(num_qubits: int, degree: int = 5, include_swaps: bool = False) -> Circuit:
    """Approximate QFT keeping only controlled rotations of order < ``degree``.

    ``degree`` follows the usual AQFT convention: a controlled-phase between qubits a
    distance ``d`` apart is kept only when ``d < degree``.  ``degree >= num_qubits``
    recovers the exact QFT.
    """
    if num_qubits < 2:
        raise WorkloadError("AQFT needs at least 2 qubits")
    if degree < 1:
        raise WorkloadError("AQFT degree must be at least 1")
    circuit = Circuit(num_qubits, f"aqft_{num_qubits}_d{degree}")
    for target in range(num_qubits):
        circuit.h(target)
        for control_offset in range(1, min(degree, num_qubits - target)):
            control = target + control_offset
            angle = math.pi / (2**control_offset)
            circuit.cp(angle, control, target)
    if include_swaps:
        for qubit in range(num_qubits // 2):
            circuit.swap(qubit, num_qubits - 1 - qubit)
    return circuit


def make_qft(num_qubits: int) -> Workload:
    """The ``QFT`` probability-vector workload."""
    return Workload(
        name="quantum_fourier_transform",
        acronym="QFT",
        circuit=qft_circuit(num_qubits),
        kind=WorkloadKind.PROBABILITY,
        params={"N": num_qubits},
    )


def make_aqft(num_qubits: int, degree: int = 5) -> Workload:
    """The ``AQFT`` probability-vector workload."""
    return Workload(
        name="approximate_quantum_fourier_transform",
        acronym="AQFT",
        circuit=aqft_circuit(num_qubits, degree),
        kind=WorkloadKind.PROBABILITY,
        params={"N": num_qubits, "degree": degree},
    )
