"""Common workload abstractions.

A :class:`Workload` bundles a benchmark circuit together with what the paper's
evaluation needs to know about it:

* whether it computes a **probability vector** (only wire cutting allowed) or an
  **expectation value** (wire + gate cutting allowed) — Section 5.1,
* the observable whose expectation value is reported (expectation workloads only),
* the three-letter acronym used in the paper's tables and the generator parameters,
  so benchmark harnesses can archive exactly what was run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..circuits import Circuit
from ..exceptions import WorkloadError
from ..utils.pauli import PauliObservable

__all__ = ["WorkloadKind", "Workload"]


class WorkloadKind:
    """The two output types distinguished throughout the paper."""

    PROBABILITY = "probability"
    EXPECTATION = "expectation"


@dataclass
class Workload:
    """A benchmark instance: circuit + output kind + optional observable."""

    name: str
    acronym: str
    circuit: Circuit
    kind: str
    observable: Optional[PauliObservable] = None
    params: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in (WorkloadKind.PROBABILITY, WorkloadKind.EXPECTATION):
            raise WorkloadError(f"unknown workload kind {self.kind!r}")
        if self.kind == WorkloadKind.EXPECTATION and self.observable is None:
            raise WorkloadError(
                f"expectation workload {self.name!r} must provide an observable"
            )

    @property
    def num_qubits(self) -> int:
        return self.circuit.num_qubits

    @property
    def allows_gate_cutting(self) -> bool:
        """Gate cutting only reconstructs expectation values (Section 2.3.2)."""
        return self.kind == WorkloadKind.EXPECTATION

    def describe(self) -> str:
        pieces = [f"{self.acronym} ({self.name})", f"N={self.num_qubits}", f"kind={self.kind}"]
        if self.params:
            pieces.append(", ".join(f"{k}={v}" for k, v in sorted(self.params.items())))
        return ", ".join(pieces)
