"""Plain-text serialisation of circuits.

The format is intentionally simple (one operation per line) so cut solutions and
subcircuits can be dumped next to benchmark results and diffed by humans:

.. code-block:: text

    qubits 3
    h 0
    cx 0 1
    rzz(0.5) 1 2
    measure 2

It round-trips every operation the IR supports and is used by the benchmark
harnesses to archive the subcircuits each experiment executed.
"""

from __future__ import annotations

import re
from typing import List

from ..exceptions import CircuitError
from .circuit import Circuit

__all__ = ["to_text", "from_text"]

_LINE_RE = re.compile(
    r"^(?P<name>[a-z_][a-z0-9_]*)"
    r"(?:\((?P<params>[^)]*)\))?"
    r"\s+(?P<qubits>[0-9 ]+)"
    r"(?:\s*#\s*(?P<tag>.*))?$"
)


def to_text(circuit: Circuit) -> str:
    """Serialise ``circuit`` to the plain-text format."""
    lines: List[str] = [f"qubits {circuit.num_qubits}"]
    for op in circuit:
        if op.params:
            params = ",".join(repr(float(p)) for p in op.params)
            head = f"{op.name}({params})"
        else:
            head = op.name
        qubits = " ".join(str(q) for q in op.qubits)
        line = f"{head} {qubits}"
        if op.tag:
            line += f"  # {op.tag}"
        lines.append(line)
    return "\n".join(lines) + "\n"


def from_text(text: str) -> Circuit:
    """Parse a circuit from the plain-text format produced by :func:`to_text`."""
    lines = [line.strip() for line in text.splitlines()]
    lines = [line for line in lines if line and not line.startswith("//")]
    if not lines or not lines[0].startswith("qubits "):
        raise CircuitError("circuit text must start with a 'qubits N' line")
    try:
        num_qubits = int(lines[0].split()[1])
    except (IndexError, ValueError) as exc:
        raise CircuitError(f"malformed qubits line: {lines[0]!r}") from exc
    circuit = Circuit(num_qubits)
    for line in lines[1:]:
        match = _LINE_RE.match(line)
        if match is None:
            raise CircuitError(f"malformed circuit line: {line!r}")
        name = match.group("name")
        params_text = match.group("params")
        params = []
        if params_text:
            params = [float(p) for p in params_text.split(",") if p.strip()]
        qubits = [int(q) for q in match.group("qubits").split()]
        tag = match.group("tag")
        if name == "measure":
            circuit.measure(qubits[0], tag=tag)
        elif name == "reset":
            circuit.reset(qubits[0], tag=tag)
        else:
            circuit.add(name, qubits, params)
    return circuit
