"""Circuit transformations.

This module hosts the passes that are substrates for the pipeline rather than the
paper's contribution itself:

* decomposition of multi-qubit primitives into the ``{single-qubit, cx, cz, rzz}``
  set the cutting formulation understands,
* routing (SWAP insertion) onto a restricted coupling map — used by the Table 3
  "real device" experiment where the 7-qubit IBM Lagos layout forces 9 routing CNOTs,
* identity padding / layer alignment used by the QR-aware DAG,
* a light peephole pass removing adjacent self-inverse gate pairs (used when reuse
  scheduling splices subcircuits together).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from ..exceptions import CircuitError
from .circuit import Circuit
from .gates import GATE_SPECS, Operation

__all__ = [
    "decompose_to_basis",
    "insert_identity_padding",
    "route_to_coupling_map",
    "remove_adjacent_inverse_pairs",
    "count_basis_two_qubit_gates",
]

#: Gates every backend in this repository can execute natively.
DEFAULT_BASIS = frozenset(
    {"id", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx", "rx", "ry", "rz", "p",
     "u3", "cx", "cz", "rzz", "measure", "reset"}
)


def decompose_to_basis(circuit: Circuit, basis: Iterable[str] = DEFAULT_BASIS) -> Circuit:
    """Rewrite ``circuit`` so that every operation name is in ``basis``.

    Supported rewrites: ``swap`` -> 3 ``cx``; ``cp``/``crz`` -> ``rz`` + ``cx``;
    ``rxx``/``ryy`` -> basis changes around ``rzz``.  Unknown gates outside the basis
    raise :class:`CircuitError`.
    """
    basis = frozenset(basis)
    result = Circuit(circuit.num_qubits, circuit.name)
    for op in circuit:
        if op.name in basis:
            result.append(op)
            continue
        if op.name == "swap":
            a, b = op.qubits
            result.cx(a, b).cx(b, a).cx(a, b)
        elif op.name == "cp":
            (lam,) = op.params
            control, target = op.qubits
            result.rz(lam / 2.0, control)
            result.cx(control, target)
            result.rz(-lam / 2.0, target)
            result.cx(control, target)
            result.rz(lam / 2.0, target)
        elif op.name == "crz":
            (theta,) = op.params
            control, target = op.qubits
            result.rz(theta / 2.0, target)
            result.cx(control, target)
            result.rz(-theta / 2.0, target)
            result.cx(control, target)
        elif op.name == "rxx":
            (theta,) = op.params
            a, b = op.qubits
            result.h(a).h(b)
            result.rzz(theta, a, b)
            result.h(a).h(b)
        elif op.name == "ryy":
            (theta,) = op.params
            a, b = op.qubits
            result.sdg(a).sdg(b).h(a).h(b)
            result.rzz(theta, a, b)
            result.h(a).h(b).s(a).s(b)
        else:
            raise CircuitError(f"no decomposition of {op.name!r} into basis {sorted(basis)}")
    return result


def count_basis_two_qubit_gates(circuit: Circuit) -> int:
    """Number of two-qubit gates after decomposing to the default basis."""
    return decompose_to_basis(circuit).num_two_qubit_gates


def insert_identity_padding(circuit: Circuit) -> Circuit:
    """Pad each layer with explicit identity gates so every qubit has a gate per layer.

    This is the (full, non-sparse) padding described in Section 4.1 of the paper; the
    QR-aware DAG uses a sparse version, but tests use this exact form to check the
    layer alignment invariant: after padding, every layer has ``num_qubits`` qubit
    slots occupied.
    """
    padded = Circuit(circuit.num_qubits, f"{circuit.name}_padded")
    for layer in circuit.layers():
        busy = {q for op in layer for q in op.qubits}
        for op in layer:
            padded.append(op)
        for qubit in range(circuit.num_qubits):
            if qubit not in busy:
                padded.append(Operation("id", (qubit,), (), "pad"))
    return padded


def remove_adjacent_inverse_pairs(circuit: Circuit) -> Circuit:
    """Peephole pass cancelling adjacent self-inverse gates on identical operands."""
    result: List[Operation] = []
    for op in circuit:
        if result:
            previous = result[-1]
            same_operands = previous.qubits == op.qubits and previous.params == op.params
            if (
                same_operands
                and previous.name == op.name
                and op.is_unitary
                and GATE_SPECS[op.name].self_inverse
            ):
                result.pop()
                continue
        result.append(op)
    cleaned = Circuit(circuit.num_qubits, circuit.name)
    for op in result:
        cleaned.append(op)
    return cleaned


def route_to_coupling_map(
    circuit: Circuit,
    coupling_edges: Sequence[Tuple[int, int]],
    initial_layout: Optional[Dict[int, int]] = None,
) -> Circuit:
    """Insert SWAPs so every two-qubit gate acts on adjacent physical qubits.

    A simple greedy router: logical qubits start at ``initial_layout`` (identity by
    default); for each two-qubit gate whose operands are not adjacent on the coupling
    graph, SWAP one operand along a shortest path until they meet.  This is not a
    state-of-the-art router, but it reproduces the routing *overhead* behaviour the
    Table 3 experiment depends on (sparse couplings force extra CNOTs).
    """
    graph = nx.Graph()
    graph.add_nodes_from(range(circuit.num_qubits))
    graph.add_edges_from(coupling_edges)
    if not nx.is_connected(graph):
        raise CircuitError("coupling map must be connected")

    layout = dict(initial_layout or {q: q for q in range(circuit.num_qubits)})
    if sorted(layout.keys()) != list(range(circuit.num_qubits)) or sorted(
        layout.values()
    ) != list(range(circuit.num_qubits)):
        raise CircuitError("initial_layout must be a permutation of the qubits")
    physical_of = dict(layout)

    routed = Circuit(circuit.num_qubits, f"{circuit.name}_routed")
    for op in circuit:
        if not op.is_two_qubit:
            routed.append(
                Operation(op.name, tuple(physical_of[q] for q in op.qubits), op.params, op.tag)
            )
            continue
        logical_a, logical_b = op.qubits
        phys_a, phys_b = physical_of[logical_a], physical_of[logical_b]
        if not graph.has_edge(phys_a, phys_b):
            path = nx.shortest_path(graph, phys_a, phys_b)
            for step in range(len(path) - 2):
                here, there = path[step], path[step + 1]
                routed.cx(here, there).cx(there, here).cx(here, there)
                inverse = {p: l for l, p in physical_of.items()}
                logical_here, logical_there = inverse[here], inverse[there]
                physical_of[logical_here], physical_of[logical_there] = there, here
            phys_a, phys_b = physical_of[logical_a], physical_of[logical_b]
        routed.append(Operation(op.name, (phys_a, phys_b), op.params, op.tag))
    return routed
