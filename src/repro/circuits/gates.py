"""Gate library for the circuit IR.

The IR distinguishes three kinds of operations:

* **unitary gates** — single- and two-qubit unitaries with an explicit matrix,
* **non-unitary operations** — ``measure`` and ``reset`` (used by dynamic circuits,
  qubit reuse, wire-cut variants and gate-cut instances),
* **structural operations** — ``identity`` padding gates and ``cut-markers`` used by
  the QR-aware DAG (Section 4.1 of the paper).

Gates are light-weight frozen dataclasses; the matrix of a parameterised gate is
computed on demand from its parameters so circuits stay cheap to copy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import CircuitError

__all__ = [
    "GateSpec",
    "Operation",
    "GATE_SPECS",
    "SINGLE_QUBIT_GATES",
    "TWO_QUBIT_GATES",
    "gate_matrix",
    "operation",
    "measure",
    "reset",
    "identity",
]

_SQRT2 = 1.0 / math.sqrt(2.0)


def _no_param(matrix: np.ndarray) -> Callable[[Tuple[float, ...]], np.ndarray]:
    def build(params: Tuple[float, ...]) -> np.ndarray:
        if params:
            raise CircuitError("gate takes no parameters")
        return matrix

    return build


def _rx(params: Tuple[float, ...]) -> np.ndarray:
    (theta,) = params
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return np.array([[c, -1.0j * s], [-1.0j * s, c]], dtype=complex)


def _ry(params: Tuple[float, ...]) -> np.ndarray:
    (theta,) = params
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return np.array([[c, -s], [s, c]], dtype=complex)


def _rz(params: Tuple[float, ...]) -> np.ndarray:
    (theta,) = params
    return np.array(
        [[np.exp(-0.5j * theta), 0.0], [0.0, np.exp(0.5j * theta)]], dtype=complex
    )


def _phase(params: Tuple[float, ...]) -> np.ndarray:
    (lam,) = params
    return np.array([[1.0, 0.0], [0.0, np.exp(1.0j * lam)]], dtype=complex)


def _u3(params: Tuple[float, ...]) -> np.ndarray:
    theta, phi, lam = params
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return np.array(
        [
            [c, -np.exp(1.0j * lam) * s],
            [np.exp(1.0j * phi) * s, np.exp(1.0j * (phi + lam)) * c],
        ],
        dtype=complex,
    )


def _rzz(params: Tuple[float, ...]) -> np.ndarray:
    (theta,) = params
    phase_same = np.exp(-0.5j * theta)
    phase_diff = np.exp(0.5j * theta)
    return np.diag([phase_same, phase_diff, phase_diff, phase_same]).astype(complex)


def _rxx(params: Tuple[float, ...]) -> np.ndarray:
    (theta,) = params
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    matrix = np.eye(4, dtype=complex) * c
    matrix[0, 3] = matrix[3, 0] = -1.0j * s
    matrix[1, 2] = matrix[2, 1] = -1.0j * s
    return matrix


def _ryy(params: Tuple[float, ...]) -> np.ndarray:
    (theta,) = params
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    matrix = np.eye(4, dtype=complex) * c
    matrix[0, 3] = matrix[3, 0] = 1.0j * s
    matrix[1, 2] = matrix[2, 1] = -1.0j * s
    return matrix


def _cp(params: Tuple[float, ...]) -> np.ndarray:
    (lam,) = params
    return np.diag([1.0, 1.0, 1.0, np.exp(1.0j * lam)]).astype(complex)


def _crz(params: Tuple[float, ...]) -> np.ndarray:
    # First operand (least significant bit) is the control: rotate the target (second
    # operand) only when the control bit is 1.
    (theta,) = params
    return np.diag(
        [1.0, np.exp(-0.5j * theta), 1.0, np.exp(0.5j * theta)]
    ).astype(complex)


_H = np.array([[_SQRT2, _SQRT2], [_SQRT2, -_SQRT2]], dtype=complex)
_X = np.array([[0.0, 1.0], [1.0, 0.0]], dtype=complex)
_Y = np.array([[0.0, -1.0j], [1.0j, 0.0]], dtype=complex)
_Z = np.array([[1.0, 0.0], [0.0, -1.0]], dtype=complex)
_S = np.diag([1.0, 1.0j]).astype(complex)
_SDG = np.diag([1.0, -1.0j]).astype(complex)
_T = np.diag([1.0, np.exp(0.25j * math.pi)]).astype(complex)
_TDG = np.diag([1.0, np.exp(-0.25j * math.pi)]).astype(complex)
_SX = 0.5 * np.array([[1.0 + 1.0j, 1.0 - 1.0j], [1.0 - 1.0j, 1.0 + 1.0j]], dtype=complex)
_ID = np.eye(2, dtype=complex)

# Two-qubit basis ordering: the *first* operand qubit is the least-significant bit of
# the basis index (matches the statevector simulator convention).
_CX = np.array(
    [
        [1, 0, 0, 0],
        [0, 0, 0, 1],
        [0, 0, 1, 0],
        [0, 1, 0, 0],
    ],
    dtype=complex,
)
_CZ = np.diag([1.0, 1.0, 1.0, -1.0]).astype(complex)
_SWAP = np.array(
    [
        [1, 0, 0, 0],
        [0, 0, 1, 0],
        [0, 1, 0, 0],
        [0, 0, 0, 1],
    ],
    dtype=complex,
)


@dataclass(frozen=True)
class GateSpec:
    """Static description of a gate type.

    Attributes:
        name: canonical lower-case gate name.
        num_qubits: operand count (1 or 2).
        num_params: number of float parameters.
        builder: callable mapping the parameter tuple to the unitary matrix.
        self_inverse: whether the gate squared is the identity (used by tests).
    """

    name: str
    num_qubits: int
    num_params: int
    builder: Callable[[Tuple[float, ...]], np.ndarray]
    self_inverse: bool = False


GATE_SPECS: Dict[str, GateSpec] = {  # qrcclint: disable=mutable-default-arg -- read-only gate registry, fully populated here and never written after import
    "id": GateSpec("id", 1, 0, _no_param(_ID), self_inverse=True),
    "x": GateSpec("x", 1, 0, _no_param(_X), self_inverse=True),
    "y": GateSpec("y", 1, 0, _no_param(_Y), self_inverse=True),
    "z": GateSpec("z", 1, 0, _no_param(_Z), self_inverse=True),
    "h": GateSpec("h", 1, 0, _no_param(_H), self_inverse=True),
    "s": GateSpec("s", 1, 0, _no_param(_S)),
    "sdg": GateSpec("sdg", 1, 0, _no_param(_SDG)),
    "t": GateSpec("t", 1, 0, _no_param(_T)),
    "tdg": GateSpec("tdg", 1, 0, _no_param(_TDG)),
    "sx": GateSpec("sx", 1, 0, _no_param(_SX)),
    "rx": GateSpec("rx", 1, 1, _rx),
    "ry": GateSpec("ry", 1, 1, _ry),
    "rz": GateSpec("rz", 1, 1, _rz),
    "p": GateSpec("p", 1, 1, _phase),
    "u3": GateSpec("u3", 1, 3, _u3),
    "cx": GateSpec("cx", 2, 0, _no_param(_CX), self_inverse=True),
    "cz": GateSpec("cz", 2, 0, _no_param(_CZ), self_inverse=True),
    "swap": GateSpec("swap", 2, 0, _no_param(_SWAP), self_inverse=True),
    "cp": GateSpec("cp", 2, 1, _cp),
    "crz": GateSpec("crz", 2, 1, _crz),
    "rzz": GateSpec("rzz", 2, 1, _rzz),
    "rxx": GateSpec("rxx", 2, 1, _rxx),
    "ryy": GateSpec("ryy", 2, 1, _ryy),
}

SINGLE_QUBIT_GATES = frozenset(n for n, s in GATE_SPECS.items() if s.num_qubits == 1)
TWO_QUBIT_GATES = frozenset(n for n, s in GATE_SPECS.items() if s.num_qubits == 2)

#: Names of non-unitary operations recognised by the IR.
NON_UNITARY_OPS = frozenset({"measure", "reset"})


@dataclass(frozen=True)
class Operation:
    """One operation applied to a tuple of qubits.

    ``name`` is either a key of :data:`GATE_SPECS`, ``"measure"`` or ``"reset"``.
    ``params`` holds gate angles.  ``tag`` is an optional free-form annotation used by
    the cutting engine to track cut-related operations (e.g. ``"cut_measure:3"``).
    """

    name: str
    qubits: Tuple[int, ...]
    params: Tuple[float, ...] = field(default_factory=tuple)
    tag: Optional[str] = None

    def __post_init__(self) -> None:
        if self.name in GATE_SPECS:
            spec = GATE_SPECS[self.name]
            if len(self.qubits) != spec.num_qubits:
                raise CircuitError(
                    f"gate {self.name!r} expects {spec.num_qubits} qubit(s), "
                    f"got {len(self.qubits)}"
                )
            if len(self.params) != spec.num_params:
                raise CircuitError(
                    f"gate {self.name!r} expects {spec.num_params} parameter(s), "
                    f"got {len(self.params)}"
                )
        elif self.name in NON_UNITARY_OPS:
            if len(self.qubits) != 1:
                raise CircuitError(f"{self.name} acts on exactly one qubit")
        else:
            raise CircuitError(f"unknown operation {self.name!r}")
        if len(set(self.qubits)) != len(self.qubits):
            raise CircuitError(f"duplicate qubits in operation {self.name!r}: {self.qubits}")

    @property
    def is_unitary(self) -> bool:
        return self.name in GATE_SPECS

    @property
    def is_measurement(self) -> bool:
        return self.name == "measure"

    @property
    def is_reset(self) -> bool:
        return self.name == "reset"

    @property
    def is_identity(self) -> bool:
        return self.name == "id"

    @property
    def is_two_qubit(self) -> bool:
        return self.is_unitary and GATE_SPECS[self.name].num_qubits == 2

    @property
    def is_single_qubit_unitary(self) -> bool:
        return self.is_unitary and GATE_SPECS[self.name].num_qubits == 1

    def matrix(self) -> np.ndarray:
        """Return the unitary matrix of this operation (raises for measure/reset)."""
        if not self.is_unitary:
            raise CircuitError(f"operation {self.name!r} has no unitary matrix")
        return GATE_SPECS[self.name].builder(self.params)

    def remapped(self, mapping: Dict[int, int]) -> "Operation":
        """Return a copy acting on ``mapping[q]`` for each operand qubit ``q``."""
        return Operation(self.name, tuple(mapping[q] for q in self.qubits), self.params, self.tag)

    def with_tag(self, tag: Optional[str]) -> "Operation":
        return Operation(self.name, self.qubits, self.params, tag)

    def __str__(self) -> str:  # pragma: no cover - display helper
        params = ", ".join(f"{p:.4g}" for p in self.params)
        body = f"{self.name}({params})" if params else self.name
        return f"{body} {list(self.qubits)}"


def gate_matrix(name: str, params: Sequence[float] = ()) -> np.ndarray:
    """Return the unitary matrix for gate ``name`` with ``params``."""
    if name not in GATE_SPECS:
        raise CircuitError(f"unknown gate {name!r}")
    spec = GATE_SPECS[name]
    if len(params) != spec.num_params:
        raise CircuitError(
            f"gate {name!r} expects {spec.num_params} parameter(s), got {len(params)}"
        )
    return spec.builder(tuple(float(p) for p in params))


def operation(name: str, qubits: Sequence[int], params: Sequence[float] = ()) -> Operation:
    """Convenience constructor for :class:`Operation`."""
    return Operation(name, tuple(int(q) for q in qubits), tuple(float(p) for p in params))


def measure(qubit: int, tag: Optional[str] = None) -> Operation:
    """A mid-circuit (or terminal) computational-basis measurement."""
    return Operation("measure", (int(qubit),), (), tag)


def reset(qubit: int, tag: Optional[str] = None) -> Operation:
    """Reset a qubit to ``|0>`` (used by qubit reuse)."""
    return Operation("reset", (int(qubit),), (), tag)


def identity(qubit: int, tag: Optional[str] = None) -> Operation:
    """An explicit identity gate (QR-aware DAG padding)."""
    return Operation("id", (int(qubit),), (), tag)
