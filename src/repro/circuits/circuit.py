"""The :class:`Circuit` class — an ordered list of operations on ``num_qubits`` wires.

The class intentionally mirrors the small subset of Qiskit's ``QuantumCircuit`` API
that the paper's pipeline needs (builder methods, depth, gate counts, composition),
while adding the pieces the cutting framework relies on: per-qubit operation order,
layer scheduling (ASAP moments) and qubit remapping.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import CircuitError
from .gates import GATE_SPECS, Operation, operation

__all__ = ["Circuit"]


class Circuit:
    """A quantum circuit over ``num_qubits`` qubits.

    Operations are stored in program order.  Qubits are integers ``0..num_qubits-1``.
    Measurements may appear anywhere (mid-circuit measurement is first-class so that
    qubit reuse and cut variants are representable).
    """

    def __init__(self, num_qubits: int, name: str = "circuit") -> None:
        if num_qubits <= 0:
            raise CircuitError(f"a circuit needs at least one qubit, got {num_qubits}")
        self._num_qubits = int(num_qubits)
        self._operations: List[Operation] = []
        self.name = name

    # ------------------------------------------------------------------ basics
    @property
    def num_qubits(self) -> int:
        return self._num_qubits

    @property
    def operations(self) -> Tuple[Operation, ...]:
        return tuple(self._operations)

    def __len__(self) -> int:
        return len(self._operations)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self._operations)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Circuit):
            return NotImplemented
        return (
            self._num_qubits == other._num_qubits
            and self._operations == other._operations
        )

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return (
            f"Circuit(name={self.name!r}, num_qubits={self._num_qubits}, "
            f"num_operations={len(self._operations)})"
        )

    def copy(self, name: Optional[str] = None) -> "Circuit":
        clone = Circuit(self._num_qubits, name or self.name)
        clone._operations = list(self._operations)
        return clone

    def __getstate__(self) -> dict:
        """Pickle support: never ship derived caches to worker processes.

        The batched simulator memoises its parsed structure on the circuit
        (see :mod:`repro.simulator.batched`); workers re-derive it cheaply, so
        shipping the matrices would only bloat every pooled request.
        """
        state = dict(self.__dict__)
        state.pop("_parsed_structure", None)
        return state

    # ------------------------------------------------------------------ builders
    def append(self, op: Operation) -> "Circuit":
        """Append an already-constructed operation (validates qubit indices)."""
        for qubit in op.qubits:
            if not 0 <= qubit < self._num_qubits:
                raise CircuitError(
                    f"operation {op.name!r} addresses qubit {qubit} but the circuit "
                    f"only has {self._num_qubits} qubits"
                )
        self._operations.append(op)
        return self

    def add(self, name: str, qubits: Sequence[int], params: Sequence[float] = ()) -> "Circuit":
        return self.append(operation(name, qubits, params))

    def h(self, qubit: int) -> "Circuit":
        return self.add("h", [qubit])

    def x(self, qubit: int) -> "Circuit":
        return self.add("x", [qubit])

    def y(self, qubit: int) -> "Circuit":
        return self.add("y", [qubit])

    def z(self, qubit: int) -> "Circuit":
        return self.add("z", [qubit])

    def s(self, qubit: int) -> "Circuit":
        return self.add("s", [qubit])

    def sdg(self, qubit: int) -> "Circuit":
        return self.add("sdg", [qubit])

    def t(self, qubit: int) -> "Circuit":
        return self.add("t", [qubit])

    def tdg(self, qubit: int) -> "Circuit":
        return self.add("tdg", [qubit])

    def sx(self, qubit: int) -> "Circuit":
        return self.add("sx", [qubit])

    def i(self, qubit: int) -> "Circuit":
        return self.add("id", [qubit])

    def rx(self, theta: float, qubit: int) -> "Circuit":
        return self.add("rx", [qubit], [theta])

    def ry(self, theta: float, qubit: int) -> "Circuit":
        return self.add("ry", [qubit], [theta])

    def rz(self, theta: float, qubit: int) -> "Circuit":
        return self.add("rz", [qubit], [theta])

    def p(self, lam: float, qubit: int) -> "Circuit":
        return self.add("p", [qubit], [lam])

    def u3(self, theta: float, phi: float, lam: float, qubit: int) -> "Circuit":
        return self.add("u3", [qubit], [theta, phi, lam])

    def cx(self, control: int, target: int) -> "Circuit":
        return self.add("cx", [control, target])

    def cz(self, qubit_a: int, qubit_b: int) -> "Circuit":
        return self.add("cz", [qubit_a, qubit_b])

    def swap(self, qubit_a: int, qubit_b: int) -> "Circuit":
        return self.add("swap", [qubit_a, qubit_b])

    def cp(self, lam: float, control: int, target: int) -> "Circuit":
        return self.add("cp", [control, target], [lam])

    def crz(self, theta: float, control: int, target: int) -> "Circuit":
        return self.add("crz", [control, target], [theta])

    def rzz(self, theta: float, qubit_a: int, qubit_b: int) -> "Circuit":
        return self.add("rzz", [qubit_a, qubit_b], [theta])

    def rxx(self, theta: float, qubit_a: int, qubit_b: int) -> "Circuit":
        return self.add("rxx", [qubit_a, qubit_b], [theta])

    def ryy(self, theta: float, qubit_a: int, qubit_b: int) -> "Circuit":
        return self.add("ryy", [qubit_a, qubit_b], [theta])

    def measure(self, qubit: int, tag: Optional[str] = None) -> "Circuit":
        return self.append(Operation("measure", (int(qubit),), (), tag))

    def reset(self, qubit: int, tag: Optional[str] = None) -> "Circuit":
        return self.append(Operation("reset", (int(qubit),), (), tag))

    def measure_all(self) -> "Circuit":
        for qubit in range(self._num_qubits):
            self.measure(qubit)
        return self

    # ------------------------------------------------------------------ metrics
    def count_ops(self) -> Dict[str, int]:
        """Histogram of operation names."""
        return dict(Counter(op.name for op in self._operations))

    @property
    def num_two_qubit_gates(self) -> int:
        return sum(1 for op in self._operations if op.is_two_qubit)

    @property
    def num_single_qubit_gates(self) -> int:
        return sum(1 for op in self._operations if op.is_single_qubit_unitary)

    @property
    def num_measurements(self) -> int:
        return sum(1 for op in self._operations if op.is_measurement)

    @property
    def num_nonlocal_pairs(self) -> int:
        """Number of distinct qubit pairs coupled by two-qubit gates."""
        pairs = {tuple(sorted(op.qubits)) for op in self._operations if op.is_two_qubit}
        return len(pairs)

    def depth(self) -> int:
        """Circuit depth counting every operation (including measure/reset) as depth 1."""
        frontier = [0] * self._num_qubits
        for op in self._operations:
            level = max(frontier[q] for q in op.qubits) + 1
            for q in op.qubits:
                frontier[q] = level
        return max(frontier, default=0)

    def active_qubits(self) -> Tuple[int, ...]:
        """Qubits touched by at least one operation."""
        used = sorted({q for op in self._operations for q in op.qubits})
        return tuple(used)

    # ------------------------------------------------------------------ structure
    def layers(self) -> List[List[Operation]]:
        """ASAP-scheduled moments: each layer is a list of non-overlapping operations."""
        frontier = [0] * self._num_qubits
        layers: List[List[Operation]] = []
        for op in self._operations:
            level = max(frontier[q] for q in op.qubits)
            while len(layers) <= level:
                layers.append([])
            layers[level].append(op)
            for q in op.qubits:
                frontier[q] = level + 1
        return layers

    def operations_on(self, qubit: int) -> List[Tuple[int, Operation]]:
        """All (program index, operation) pairs touching ``qubit``, in program order."""
        return [(i, op) for i, op in enumerate(self._operations) if qubit in op.qubits]

    # ------------------------------------------------------------------ composition
    def compose(self, other: "Circuit", qubit_map: Optional[Dict[int, int]] = None) -> "Circuit":
        """Append ``other``'s operations to this circuit (optionally remapping qubits)."""
        mapping = qubit_map or {q: q for q in range(other.num_qubits)}
        for op in other:
            self.append(op.remapped(mapping))
        return self

    def remapped(self, mapping: Dict[int, int], num_qubits: Optional[int] = None) -> "Circuit":
        """Return a new circuit with qubit ``q`` relabelled to ``mapping[q]``."""
        target_size = num_qubits if num_qubits is not None else self._num_qubits
        clone = Circuit(target_size, self.name)
        for op in self._operations:
            clone.append(op.remapped(mapping))
        return clone

    def inverse(self) -> "Circuit":
        """Return the adjoint circuit (measure/reset operations are not invertible)."""
        inverse_names = {"s": "sdg", "sdg": "s", "t": "tdg", "tdg": "t"}
        clone = Circuit(self._num_qubits, f"{self.name}_dg")
        for op in reversed(self._operations):
            if not op.is_unitary:
                raise CircuitError("cannot invert a circuit containing measure/reset")
            if op.name in inverse_names:
                clone.add(inverse_names[op.name], op.qubits)
            elif GATE_SPECS[op.name].num_params:
                if op.name == "u3":
                    theta, phi, lam = op.params
                    clone.add("u3", op.qubits, (-theta, -lam, -phi))
                else:
                    clone.add(op.name, op.qubits, tuple(-p for p in op.params))
            elif op.name == "sx":
                clone.add("sx", op.qubits)
                clone.add("x", op.qubits)  # sx^dagger = x . sx
            else:
                clone.add(op.name, op.qubits)
        return clone

    # ------------------------------------------------------------------ numerics
    def unitary(self) -> np.ndarray:
        """Dense unitary of the circuit (only for small, measurement-free circuits)."""
        if self._num_qubits > 12:
            raise CircuitError("refusing to build a dense unitary for > 12 qubits")
        dim = 2**self._num_qubits
        total = np.eye(dim, dtype=complex)
        for op in self._operations:
            if not op.is_unitary:
                raise CircuitError("circuit contains non-unitary operations")
            total = _embed(op.matrix(), op.qubits, self._num_qubits) @ total
        return total

    # ------------------------------------------------------------------ display
    def summary(self) -> str:
        """One-line human readable summary used by examples and benchmarks."""
        counts = self.count_ops()
        two_q = self.num_two_qubit_gates
        return (
            f"{self.name}: {self._num_qubits} qubits, depth {self.depth()}, "
            f"{len(self)} ops ({two_q} two-qubit), counts={counts}"
        )


def _embed(matrix: np.ndarray, qubits: Tuple[int, ...], num_qubits: int) -> np.ndarray:
    """Embed a 1- or 2-qubit gate matrix into the full ``2**num_qubits`` space."""
    dim = 2**num_qubits
    full = np.zeros((dim, dim), dtype=complex)
    k = len(qubits)
    sub_dim = 2**k
    other = [q for q in range(num_qubits) if q not in qubits]
    for col in range(dim):
        col_sub = 0
        for pos, q in enumerate(qubits):
            col_sub |= ((col >> q) & 1) << pos
        col_rest = col
        for q in qubits:
            col_rest &= ~(1 << q)
        for row_sub in range(sub_dim):
            amplitude = matrix[row_sub, col_sub]
            if amplitude == 0:
                continue
            row = col_rest
            for pos, q in enumerate(qubits):
                if (row_sub >> pos) & 1:
                    row |= 1 << q
            full[row, col] += amplitude
    del other
    return full
