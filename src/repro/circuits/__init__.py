"""Quantum-circuit intermediate representation (gates, circuits, DAG, transforms)."""

from .circuit import Circuit
from .dag import CircuitDag, DagNode, WireSegment
from .gates import (
    GATE_SPECS,
    SINGLE_QUBIT_GATES,
    TWO_QUBIT_GATES,
    Operation,
    gate_matrix,
    identity,
    measure,
    operation,
    reset,
)
from .text import from_text, to_text
from .transforms import (
    DEFAULT_BASIS,
    count_basis_two_qubit_gates,
    decompose_to_basis,
    insert_identity_padding,
    remove_adjacent_inverse_pairs,
    route_to_coupling_map,
)

__all__ = [
    "Circuit",
    "CircuitDag",
    "DagNode",
    "WireSegment",
    "GATE_SPECS",
    "SINGLE_QUBIT_GATES",
    "TWO_QUBIT_GATES",
    "DEFAULT_BASIS",
    "Operation",
    "count_basis_two_qubit_gates",
    "decompose_to_basis",
    "from_text",
    "gate_matrix",
    "identity",
    "insert_identity_padding",
    "measure",
    "operation",
    "remove_adjacent_inverse_pairs",
    "reset",
    "route_to_coupling_map",
    "to_text",
]
