"""Gate-level DAG view of a circuit.

The DAG exposes exactly the structure the cutting formulation needs:

* one **node** per operation (plus implicit input/output terminals per qubit),
* one **wire segment** per pair of consecutive operations on the same qubit — every
  wire segment is a potential wire-cut location (the yellow crosses of Figure 3),
* convenience queries: predecessors/successors along a wire, segments entering a
  node, topological order, and per-qubit operation chains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx

from ..exceptions import CircuitError
from .circuit import Circuit
from .gates import Operation

__all__ = ["WireSegment", "DagNode", "CircuitDag"]


@dataclass(frozen=True)
class DagNode:
    """A single operation node in the DAG.

    Attributes:
        index: position of the operation in the circuit's program order.
        operation: the operation itself.
    """

    index: int
    operation: Operation

    @property
    def qubits(self) -> Tuple[int, ...]:
        return self.operation.qubits


@dataclass(frozen=True)
class WireSegment:
    """A wire segment between two consecutive operations on the same qubit.

    ``upstream`` is ``None`` for the segment from the circuit input to the qubit's
    first operation (that segment is never a valid cut location — the paper never
    cuts the first layer); ``downstream`` is ``None`` for the segment from the last
    operation to the circuit output.
    """

    qubit: int
    upstream: Optional[int]
    downstream: Optional[int]

    @property
    def is_cuttable(self) -> bool:
        """A segment is a cut candidate only if it joins two real operations."""
        return self.upstream is not None and self.downstream is not None

    def key(self) -> Tuple[int, int, int]:
        up = -1 if self.upstream is None else self.upstream
        down = -1 if self.downstream is None else self.downstream
        return (self.qubit, up, down)


class CircuitDag:
    """DAG of a circuit with per-qubit wire chains and wire-segment enumeration."""

    def __init__(self, circuit: Circuit) -> None:
        self._circuit = circuit
        self._nodes: List[DagNode] = [
            DagNode(i, op) for i, op in enumerate(circuit.operations)
        ]
        self._wire_chains: Dict[int, List[int]] = {q: [] for q in range(circuit.num_qubits)}
        for node in self._nodes:
            for qubit in node.qubits:
                self._wire_chains[qubit].append(node.index)
        self._segments: List[WireSegment] = []
        self._segments_by_qubit: Dict[int, List[WireSegment]] = {
            q: [] for q in range(circuit.num_qubits)
        }
        for qubit, chain in self._wire_chains.items():
            previous: Optional[int] = None
            for node_index in chain:
                segment = WireSegment(qubit, previous, node_index)
                self._segments.append(segment)
                self._segments_by_qubit[qubit].append(segment)
                previous = node_index
            self._segments.append(WireSegment(qubit, previous, None))
            self._segments_by_qubit[qubit].append(WireSegment(qubit, previous, None))
        self._graph = self._build_graph()

    # ------------------------------------------------------------------ accessors
    @property
    def circuit(self) -> Circuit:
        return self._circuit

    @property
    def nodes(self) -> Tuple[DagNode, ...]:
        return tuple(self._nodes)

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    def node(self, index: int) -> DagNode:
        try:
            return self._nodes[index]
        except IndexError as exc:
            raise CircuitError(f"no DAG node with index {index}") from exc

    def wire_chain(self, qubit: int) -> Tuple[int, ...]:
        """Program-order operation indices touching ``qubit``."""
        if qubit not in self._wire_chains:
            raise CircuitError(f"qubit {qubit} not in circuit")
        return tuple(self._wire_chains[qubit])

    def segments(self, cuttable_only: bool = False) -> Tuple[WireSegment, ...]:
        """All wire segments (optionally only those joining two real operations)."""
        if cuttable_only:
            return tuple(s for s in self._segments if s.is_cuttable)
        return tuple(self._segments)

    def segments_on(self, qubit: int) -> Tuple[WireSegment, ...]:
        return tuple(self._segments_by_qubit[qubit])

    def segment_before(self, node_index: int, qubit: int) -> WireSegment:
        """The wire segment entering operation ``node_index`` on ``qubit``."""
        for segment in self._segments_by_qubit[qubit]:
            if segment.downstream == node_index:
                return segment
        raise CircuitError(f"operation {node_index} does not act on qubit {qubit}")

    def segment_after(self, node_index: int, qubit: int) -> WireSegment:
        """The wire segment leaving operation ``node_index`` on ``qubit``."""
        for segment in self._segments_by_qubit[qubit]:
            if segment.upstream == node_index:
                return segment
        raise CircuitError(f"operation {node_index} does not act on qubit {qubit}")

    def predecessor_on(self, node_index: int, qubit: int) -> Optional[int]:
        """Index of the previous operation on ``qubit`` before ``node_index`` (or None)."""
        return self.segment_before(node_index, qubit).upstream

    def successor_on(self, node_index: int, qubit: int) -> Optional[int]:
        """Index of the next operation on ``qubit`` after ``node_index`` (or None)."""
        return self.segment_after(node_index, qubit).downstream

    # ------------------------------------------------------------------ graph views
    def _build_graph(self) -> nx.DiGraph:
        graph = nx.DiGraph()
        for node in self._nodes:
            graph.add_node(node.index, operation=node.operation)
        for segment in self._segments:
            if segment.is_cuttable:
                graph.add_edge(segment.upstream, segment.downstream, qubit=segment.qubit)
        return graph

    @property
    def graph(self) -> nx.DiGraph:
        """The underlying networkx DiGraph (operation indices as nodes)."""
        return self._graph

    def topological_order(self) -> List[int]:
        return list(nx.topological_sort(self._graph))

    def ancestors(self, node_index: int) -> frozenset:
        """All operations that must execute before ``node_index`` (its causal cone)."""
        return frozenset(nx.ancestors(self._graph, node_index))

    def descendants(self, node_index: int) -> frozenset:
        """All operations that depend on the output of ``node_index``."""
        return frozenset(nx.descendants(self._graph, node_index))

    def qubit_first_op(self, qubit: int) -> Optional[int]:
        chain = self._wire_chains[qubit]
        return chain[0] if chain else None

    def qubit_last_op(self, qubit: int) -> Optional[int]:
        chain = self._wire_chains[qubit]
        return chain[-1] if chain else None

    def qubit_interaction_graph(self) -> nx.Graph:
        """Undirected graph over qubits with an edge per interacting qubit pair."""
        graph = nx.Graph()
        graph.add_nodes_from(range(self._circuit.num_qubits))
        for node in self._nodes:
            if node.operation.is_two_qubit:
                a, b = node.qubits
                if graph.has_edge(a, b):
                    graph[a][b]["weight"] += 1
                else:
                    graph.add_edge(a, b, weight=1)
        return graph

    # ------------------------------------------------------------------ reuse helpers
    def qubit_dependency_graph(self) -> nx.DiGraph:
        """Directed graph over *qubits*: edge ``a -> b`` if some operation on ``b``
        depends (transitively) on an operation on ``a``.

        Used by the qubit-reuse analysis: qubit ``a`` can be reused as qubit ``b``
        only if ``b``'s first operation does not causally precede ``a``'s last
        operation, which this graph makes cheap to query.
        """
        graph = nx.DiGraph()
        graph.add_nodes_from(range(self._circuit.num_qubits))
        for node in self._nodes:
            if node.operation.is_two_qubit:
                a, b = node.qubits
                graph.add_edge(a, b)
                graph.add_edge(b, a)
        return graph

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return (
            f"CircuitDag(nodes={self.num_nodes}, "
            f"cuttable_segments={len(self.segments(cuttable_only=True))})"
        )
